// Tests for the completion-time router (Lemmas 2.8/2.9): geometric
// hop-scale path systems, scale selection, and the cong+dil advantage over
// congestion-only routing on deep graphs.

#include <gtest/gtest.h>

#include <set>

#include "core/completion.hpp"
#include "core/sampler.hpp"
#include "demand/generators.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "oblivious/hop_bounded_trees.hpp"
#include "oblivious/racke_routing.hpp"

namespace sor {
namespace {

std::vector<VertexPair> grid_corner_pairs() {
  return {VertexPair::canonical(0, 24), VertexPair::canonical(4, 20),
          VertexPair::canonical(0, 4), VertexPair::canonical(20, 24)};
}

TEST(Completion, ScalesAreGeometric) {
  const Graph g = make_grid(5, 5);
  const auto pairs = grid_corner_pairs();
  CompletionOptions options;
  options.k = 3;
  options.seed = 1;
  const CompletionTimeRouter router(g, pairs, options);
  ASSERT_GE(router.num_scales(), 2u);
  for (std::size_t j = 0; j + 1 < router.num_scales(); ++j) {
    EXPECT_EQ(router.scale_hop_bound(j + 1), 2 * router.scale_hop_bound(j));
  }
  EXPECT_GE(router.scale_hop_bound(router.num_scales() - 1),
            g.num_vertices());
}

TEST(Completion, SubsystemsRespectHopBounds) {
  const Graph g = make_grid(5, 5);
  const auto pairs = grid_corner_pairs();
  CompletionOptions options;
  options.k = 3;
  options.seed = 2;
  const CompletionTimeRouter router(g, pairs, options);
  for (std::size_t j = 0; j < router.num_scales(); ++j) {
    const PathSystem& system = router.scale_system(j);
    for (const VertexPair& pair : system.pairs()) {
      const std::uint32_t dist = bfs(g, pair.a).hops[pair.b];
      for (const Path& p : system.canonical_paths(pair.a, pair.b)) {
        EXPECT_LE(p.hops(),
                  std::max(router.scale_hop_bound(j), dist));
      }
    }
  }
}

TEST(Completion, CombinedSystemSparsityIsKTimesScales) {
  const Graph g = make_grid(4, 4);
  const std::vector<VertexPair> pairs{VertexPair::canonical(0, 15)};
  CompletionOptions options;
  options.k = 2;
  options.seed = 3;
  const CompletionTimeRouter router(g, pairs, options);
  const PathSystem combined = router.combined_system();
  EXPECT_EQ(combined.total_paths(), 2u * router.num_scales());
}

TEST(Completion, RouteReturnsBestScale) {
  const Graph g = make_grid(5, 5);
  const auto pairs = grid_corner_pairs();
  CompletionOptions options;
  options.k = 4;
  options.seed = 4;
  const CompletionTimeRouter router(g, pairs, options);
  Demand d;
  d.add(0, 24, 1.0);
  d.add(4, 20, 1.0);
  const auto result = router.route(d);
  EXPECT_GT(result.congestion, 0.0);
  EXPECT_GE(result.dilation, 8u);  // corner-to-corner needs >= 8 hops
  EXPECT_DOUBLE_EQ(result.objective,
                   result.congestion + static_cast<double>(result.dilation));
  EXPECT_LT(result.best_scale, router.num_scales());
}

TEST(Completion, HopScalesBeatCongestionOnlyOnDeepGraphs) {
  // Path-of-cliques: congestion-optimal routing happily detours through
  // the whole chain; completion-time routing must keep dilation at the
  // distance scale. Compare cong+dil of the completion router against a
  // congestion-only router over a Räcke sample.
  const Graph g = make_path_of_cliques(6, 5);  // 30 vertices, deep
  std::vector<VertexPair> pairs;
  Demand d;
  // Neighbour-clique traffic: short optimal routes exist.
  for (std::uint32_t c = 0; c + 1 < 6; ++c) {
    const Vertex a = c * 5;          // first vertex of clique c
    const Vertex b = (c + 1) * 5;    // first vertex of clique c+1
    pairs.push_back(VertexPair::canonical(a, b));
    d.add(a, b, 1.0);
  }

  CompletionOptions options;
  options.k = 4;
  options.seed = 5;
  const CompletionTimeRouter completion(g, pairs, options);
  const auto ct = completion.route(d);

  // Completion-time routing keeps dilation near the actual distances
  // (inter-clique distance <= 3 hops; scale 4 or 8 suffices).
  EXPECT_LE(ct.dilation, 16u);
  EXPECT_LE(ct.objective, 24.0);
}

TEST(Completion, ThrowsOnEmptyDemandRouting) {
  const Graph g = make_grid(3, 3);
  const std::vector<VertexPair> pairs{VertexPair::canonical(0, 8)};
  CompletionOptions options;
  options.k = 2;
  const CompletionTimeRouter router(g, pairs, options);
  const auto result = router.route(Demand{});
  // Empty demand: congestion 0, dilation 0, objective 0 at some scale.
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

TEST(HopBoundedTrees, RespectsBudgetAndValidity) {
  const Graph g = make_grid(5, 5);
  for (std::uint32_t h : {2u, 6u, 12u}) {
    const HopBoundedTreeRouting routing(g, h, 0, 3);
    Rng rng(40 + h);
    for (int i = 0; i < 40; ++i) {
      Vertex s = 0, t = 0;
      while (s == t) {
        s = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
        t = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
      }
      const Path p = routing.sample_path(s, t, rng);
      EXPECT_TRUE(is_simple_path(g, p));
      const std::uint32_t dist = bfs(g, s).hops[t];
      EXPECT_LE(p.hops(), std::max(h, dist));
    }
  }
}

TEST(HopBoundedTrees, LargeBudgetUsesTreeDiversity) {
  const Graph g = make_torus(4, 4);
  const HopBoundedTreeRouting routing(g, 16, 6, 5);
  EXPECT_EQ(routing.num_trees(), 6u);
  Rng rng(6);
  std::set<std::vector<EdgeId>> distinct;
  for (int i = 0; i < 60; ++i) {
    distinct.insert(routing.sample_path(0, 10, rng).edges);
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Completion, BothSourcesProduceValidRouters) {
  const Graph g = make_path_of_cliques(4, 4);
  std::vector<VertexPair> pairs;
  Demand d;
  for (std::uint32_t c = 0; c + 1 < 4; ++c) {
    pairs.push_back(VertexPair::canonical(c * 4, (c + 1) * 4));
    d.add(c * 4, (c + 1) * 4, 1.0);
  }
  for (const auto source : {CompletionOptions::Source::kBallValiant,
                            CompletionOptions::Source::kBoundedTrees}) {
    CompletionOptions options;
    options.k = 3;
    options.seed = 7;
    options.source = source;
    const CompletionTimeRouter router(g, pairs, options);
    const auto result = router.route(d);
    EXPECT_GT(result.congestion, 0.0);
    EXPECT_LE(result.dilation, 2u * g.num_vertices());
    EXPECT_LE(result.objective, 30.0);
  }
}

}  // namespace
}  // namespace sor
