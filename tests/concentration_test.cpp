// Empirical validation of the Appendix B probability machinery the Main
// Lemma rests on: negative association of multinomial path-sampling
// indicators and the Chernoff tails used for the per-edge congestion
// bounds. These are statistical property tests with deterministic seeds
// and generous tolerances.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/sampler.hpp"
#include "core/weak_routing.hpp"
#include "demand/generators.hpp"
#include "graph/generators.hpp"
#include "oblivious/valiant.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sor {
namespace {

// --------------------------------------------------------------------
// Lemma B.2 flavor: the indicators {X_p} of a categorical draw ("which
// path did sample i pick") are negatively associated. A measurable
// consequence: for p != q, Cov(X_p, X_q) <= 0, i.e. E[X_p X_q] <=
// E[X_p]·E[X_q].
// --------------------------------------------------------------------
TEST(NegativeAssociation, CategoricalIndicatorsAntiCorrelate) {
  Rng rng(1);
  const std::vector<double> weights{0.5, 0.3, 0.2};
  const int trials = 200000;
  // With one draw, X_p·X_q = 0 always, so test the k-draw counts
  // N_p = Σ_i X_{i,p} instead: for multinomials Cov(N_p, N_q) = -k·p·q.
  const int k = 8;
  std::vector<double> sum(3, 0), sum_sq(3, 0);
  double sum_01 = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> counts(3, 0);
    for (int i = 0; i < k; ++i) ++counts[rng.next_weighted(weights)];
    for (int p = 0; p < 3; ++p) sum[p] += counts[p];
    sum_01 += counts[0] * counts[1];
  }
  const double mean0 = sum[0] / trials;
  const double mean1 = sum[1] / trials;
  const double cov01 = sum_01 / trials - mean0 * mean1;
  const double expected_cov = -k * weights[0] * weights[1];  // = -1.2
  EXPECT_LT(cov01, 0.0);
  EXPECT_NEAR(cov01, expected_cov, 0.05);
}

// --------------------------------------------------------------------
// Lemma B.5 flavor: Chernoff upper tail for sums of negatively
// associated 0/1 variables. Empirical check on the exact quantity the
// Main Lemma bounds: the number of sampled paths crossing a fixed edge.
// --------------------------------------------------------------------
TEST(Chernoff, EdgeLoadTailDecaysExponentially) {
  const std::uint32_t d = 5;
  const Graph g = make_hypercube(d);
  const ValiantHypercube routing(g, d);

  // Fix an edge and a permutation demand; sample k paths per pair and
  // count how many cross the edge. Repeat over independent samples and
  // measure the tail beyond multiples of the mean.
  Rng demand_rng(2);
  const Demand demand = random_permutation_demand(g, demand_rng);
  const EdgeId edge = 0;
  const std::size_t k = 4;

  const int trials = 400;
  std::vector<double> crossings;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + t);
    double count = 0;
    for (const Commodity& c : demand.commodities()) {
      for (std::size_t i = 0; i < k; ++i) {
        const Path p = routing.sample_path(c.src, c.dst, rng);
        for (EdgeId e : p.edges) {
          if (e == edge) count += 1;
        }
      }
    }
    crossings.push_back(count / static_cast<double>(k));  // normalized load
  }

  const double mu = mean(crossings);
  // Valiant keeps expected normalized load O(1): sanity.
  EXPECT_LT(mu, 4.0);
  // Tail: P[X > 2μ] should be small, P[X > 4μ] vanishing.
  int above2 = 0, above4 = 0;
  for (double x : crossings) {
    if (x > 2 * mu) ++above2;
    if (x > 4 * mu) ++above4;
  }
  EXPECT_LT(static_cast<double>(above2) / trials, 0.05);
  EXPECT_EQ(above4, 0);
}

// --------------------------------------------------------------------
// The union-bound scaling (Corollary 5.7 flavor): failure probability of
// a FIXED demand decays as k grows. Measured as the fraction of
// independent k-samples whose best restricted congestion exceeds a fixed
// multiple of the oblivious baseline.
// --------------------------------------------------------------------
TEST(Chernoff, PerDemandFailureDecaysWithK) {
  const std::uint32_t d = 4;
  const Graph g = make_hypercube(d);
  const ValiantHypercube routing(g, d);
  const Demand demand = bit_complement_demand(d);

  auto failure_rate = [&](std::size_t k) {
    const int trials = 30;
    int failures = 0;
    for (int t = 0; t < trials; ++t) {
      SampleOptions sample;
      sample.k = k;
      const PathSystem ps =
          sample_path_system_for_demand(routing, demand, sample, 500 + t);
      // Cheap proxy for the LP: the equal-split congestion of the sample
      // (what the weak process starts from).
      EdgeLoad load = zero_load(g);
      for (const Commodity& c : demand.commodities()) {
        const auto paths = ps.paths_oriented(c.src, c.dst);
        for (const Path& p : paths) {
          add_path_load(p, c.amount / static_cast<double>(paths.size()),
                        load);
        }
      }
      if (max_congestion(g, load) > 6.0) ++failures;
    }
    return static_cast<double>(failures) / trials;
  };

  const double f1 = failure_rate(1);
  const double f8 = failure_rate(8);
  EXPECT_LE(f8, f1);
  EXPECT_LT(f8, 0.15);
}

// --------------------------------------------------------------------
// Bad-pattern bookkeeping (Lemma 5.13 flavor): the deletion process can
// cut at most total_paths paths, and the count of deleted edges is
// bounded by total initial load / threshold — a combinatorial sanity
// invariant mirroring the bad-pattern counting.
// --------------------------------------------------------------------
TEST(BadPatterns, DeletionBudgetIsBounded) {
  const std::uint32_t d = 4;
  const Graph g = make_hypercube(d);
  const ValiantHypercube routing(g, d);
  Rng rng(9);
  const Demand demand = random_permutation_demand(g, rng);
  SampleOptions sample;
  sample.k = 3;
  const PathSystem ps =
      sample_path_system_for_demand(routing, demand, sample, 10);

  // Total initial (fractional) load = Σ_j d_j · avg-path-length <= d·|D|.
  double total_load = 0;
  for (const Commodity& c : demand.commodities()) {
    const auto paths = ps.paths_oriented(c.src, c.dst);
    for (const Path& p : paths) {
      total_load += c.amount / static_cast<double>(paths.size()) *
                    static_cast<double>(p.hops());
    }
  }

  RestrictedProblem problem;
  problem.graph = &g;
  for (const Commodity& c : demand.commodities()) {
    RestrictedCommodity rc;
    rc.demand = c.amount;
    rc.candidates = ps.paths_oriented(c.src, c.dst);
    problem.commodities.push_back(std::move(rc));
  }
  const double threshold = 1.0;
  const WeakRoutingResult r = weak_routing_process(problem, threshold);
  // Every deleted edge carried > threshold load at deletion time, and
  // deleting it removes that load permanently.
  EXPECT_LE(static_cast<double>(r.deleted_edges.size()),
            total_load / threshold + 1);
}

}  // namespace
}  // namespace sor
