// Unit tests for src/core: PathSystem semantics, (λ·k)-sampling, the
// semi-oblivious router (fractional + integral), and evaluation helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "core/attribution.hpp"
#include "core/evaluate.hpp"
#include "core/path_system.hpp"
#include "core/router.hpp"
#include "core/sampler.hpp"
#include "demand/generators.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "oblivious/ksp.hpp"
#include "oblivious/racke_routing.hpp"
#include "oblivious/shortest_path.hpp"
#include "oblivious/valiant.hpp"

namespace sor {
namespace {

TEST(PathSystem, CanonicalizesOrientation) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  PathSystem ps;
  ps.add(Path{2, 0, {e12, e01}});  // given dst→src
  EXPECT_TRUE(ps.has_pair(0, 2));
  EXPECT_TRUE(ps.has_pair(2, 0));
  const auto forward = ps.paths_oriented(0, 2);
  ASSERT_EQ(forward.size(), 1u);
  EXPECT_EQ(forward[0].src, 0u);
  EXPECT_EQ(forward[0].dst, 2u);
  EXPECT_EQ(forward[0].edges, (std::vector<EdgeId>{e01, e12}));
  const auto backward = ps.paths_oriented(2, 0);
  EXPECT_EQ(backward[0].src, 2u);
  EXPECT_EQ(backward[0].edges, (std::vector<EdgeId>{e12, e01}));
}

TEST(PathSystem, KeepsMultiplicity) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  PathSystem ps;
  ps.add(Path{0, 1, {e}});
  ps.add(Path{0, 1, {e}});
  EXPECT_EQ(ps.total_paths(), 2u);
  EXPECT_EQ(ps.max_sparsity(), 2u);
  ps.deduplicate();
  EXPECT_EQ(ps.total_paths(), 1u);
}

TEST(PathSystem, RejectsTrivialPath) {
  PathSystem ps;
  EXPECT_THROW(ps.add(Path{1, 1, {}}), CheckError);
}

TEST(PathSystem, PairsSortedAndStatistics) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const EdgeId e23 = g.add_edge(2, 3);
  PathSystem ps;
  ps.add(Path{2, 3, {e23}});
  ps.add(Path{0, 1, {e01}});
  ps.add(Path{0, 2, {e01, e12}});
  const auto pairs = ps.pairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 1u);
  EXPECT_EQ(pairs[2].a, 2u);
  EXPECT_EQ(ps.max_hops(), 2u);
}

TEST(PathSystem, MergeUnionsMultisets) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  PathSystem a, b;
  a.add(Path{0, 1, {e01}});
  b.add(Path{0, 1, {e01}});
  b.add(Path{1, 2, {e12}});
  const PathSystem m = merge(a, b);
  EXPECT_EQ(m.total_paths(), 3u);
  EXPECT_EQ(m.canonical_paths(0, 1).size(), 2u);
}

TEST(Sampler, ProducesExactlyKPathsPerPair) {
  const Graph g = make_hypercube(4);
  const ValiantHypercube routing(g, 4);
  SampleOptions options;
  options.k = 5;
  const PathSystem ps = sample_path_system_all_pairs(routing, options, 1);
  EXPECT_EQ(ps.num_pairs(), 16u * 15 / 2);
  for (const VertexPair& pair : ps.pairs()) {
    EXPECT_EQ(ps.canonical_paths(pair.a, pair.b).size(), 5u);
  }
}

TEST(Sampler, DeterministicInSeed) {
  const Graph g = make_grid(3, 3);
  const ShortestPathRouting routing(g);
  SampleOptions options;
  options.k = 3;
  const PathSystem a = sample_path_system_all_pairs(routing, options, 42);
  const PathSystem b = sample_path_system_all_pairs(routing, options, 42);
  EXPECT_EQ(a.total_paths(), b.total_paths());
  for (const VertexPair& pair : a.pairs()) {
    const auto pa = a.canonical_paths(pair.a, pair.b);
    const auto pb = b.canonical_paths(pair.a, pair.b);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  }
}

TEST(Sampler, LambdaScalingUsesMinCut) {
  // Dumbbell with 3 bridges: portal pair has λ = 3, intra-clique pairs
  // have λ = clique connectivity (≥ 4 when clamped at 4).
  const Graph g = make_dumbbell(5, 3);
  const KspRouting routing(g, 8);
  SampleOptions options;
  options.k = 2;
  options.lambda_cap = 4;
  const std::vector<VertexPair> pairs{VertexPair::canonical(0, 5),
                                      VertexPair::canonical(1, 2)};
  const PathSystem ps = sample_path_system(routing, pairs, options, 3);
  // Portals 0 and 5: λ capped... the direct bridges give λ(0,5) = 3 +
  // possible... actually λ(0,5) >= 3 (bridges) and is clamped at 4.
  EXPECT_GE(ps.canonical_paths(0, 5).size(), 2u * 3);
  // Intra-clique pair (1,2) in K5: λ = 4 (clamped).
  EXPECT_EQ(ps.canonical_paths(1, 2).size(), 2u * 4);
}

TEST(Sampler, ForDemandCoversSupportOnly) {
  const Graph g = make_grid(4, 4);
  const ShortestPathRouting routing(g);
  Demand d;
  d.add(0, 15, 1.0);
  d.add(3, 12, 1.0);
  SampleOptions options;
  options.k = 2;
  const PathSystem ps = sample_path_system_for_demand(routing, d, options, 9);
  EXPECT_EQ(ps.num_pairs(), 2u);
  EXPECT_TRUE(ps.has_pair(0, 15));
  EXPECT_TRUE(ps.has_pair(12, 3));
}

TEST(Router, SingleCommoditySplitsOnDiamond) {
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(0, 2);
  const EdgeId e2 = g.add_edge(1, 3);
  const EdgeId e3 = g.add_edge(2, 3);
  PathSystem ps;
  ps.add(Path{0, 3, {e0, e2}});
  ps.add(Path{0, 3, {e1, e3}});
  Demand d;
  d.add(0, 3, 1.0);
  const SemiObliviousRouter router(g, ps);
  const FractionalRoute route = router.route_fractional(d);
  EXPECT_NEAR(route.congestion, 0.5, 1e-6);
  EXPECT_EQ(route.dilation, 2u);
}

TEST(Router, ThrowsWithoutCandidatesUnlessFallback) {
  const Graph g = make_grid(3, 3);
  PathSystem empty;
  Demand d;
  d.add(0, 8, 1.0);
  {
    const SemiObliviousRouter router(g, empty);
    EXPECT_THROW(router.route_fractional(d), CheckError);
  }
  {
    RouterOptions options;
    options.add_shortest_fallback = true;
    const SemiObliviousRouter router(g, empty, options);
    const FractionalRoute route = router.route_fractional(d);
    EXPECT_NEAR(route.congestion, 1.0, 1e-9);  // single BFS path
    EXPECT_EQ(route.dilation, 4u);
  }
}

TEST(Router, FailureMaskedPairFollowsFallbackContract) {
  // A pair whose candidates are all masked out by failures (activation
  // flags, not an empty system) must behave exactly like a pair with no
  // candidates: CheckError without add_shortest_fallback, BFS fallback
  // with it.
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e02 = g.add_edge(0, 2);
  const EdgeId e13 = g.add_edge(1, 3);
  const EdgeId e23 = g.add_edge(2, 3);
  g.add_edge(0, 3);
  PathSystem ps;
  ps.add(Path{0, 3, {e01, e13}});
  ps.add(Path{0, 3, {e02, e23}});
  Demand d;
  d.add(0, 3, 1.0);

  PathActivation activation(ps);
  activation.set_active(0, 3, 0, false);
  activation.set_active(0, 3, 1, false);
  {
    SemiObliviousRouter router(g, ps);
    router.set_activation(&activation);
    EXPECT_THROW(router.route_fractional(d), CheckError);
  }
  {
    RouterOptions options;
    options.add_shortest_fallback = true;
    SemiObliviousRouter router(g, ps, options);
    router.set_activation(&activation);
    const FractionalRoute route = router.route_fractional(d);
    EXPECT_NEAR(route.congestion, 1.0, 1e-9);
    EXPECT_EQ(route.dilation, 1u);  // BFS finds the direct 0–3 edge
  }
  // Partially masked pair: the LP sees only the surviving candidate.
  activation.set_active(0, 3, 1, true);
  {
    SemiObliviousRouter router(g, ps);
    router.set_activation(&activation);
    const FractionalRoute route = router.route_fractional(d);
    EXPECT_NEAR(route.congestion, 1.0, 1e-9);
    ASSERT_EQ(route.problem.commodities.size(), 1u);
    EXPECT_EQ(route.problem.commodities[0].candidates.size(), 1u);
  }
}

TEST(PathActivation, ExtrasJoinTheCandidateList) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const EdgeId e02 = g.add_edge(0, 2);
  PathSystem ps;
  ps.add(Path{0, 2, {e01, e12}});
  PathActivation activation(ps);
  EXPECT_EQ(activation.num_active(0, 2), 1u);

  const std::size_t extra = activation.add_extra(Path{2, 0, {e02}});
  EXPECT_EQ(activation.num_extras(0, 2), 1u);
  EXPECT_EQ(activation.num_active(0, 2), 2u);
  const std::vector<Path> oriented = activation.active_oriented(0, 2);
  ASSERT_EQ(oriented.size(), 2u);
  EXPECT_EQ(oriented[1].src, 0u);  // extra re-oriented s→t
  EXPECT_EQ(oriented[1].edges, (std::vector<EdgeId>{e02}));

  activation.set_extra_active(0, 2, extra, false);
  EXPECT_EQ(activation.num_active(0, 2), 1u);
  activation.set_active(0, 2, 0, false);
  EXPECT_EQ(activation.num_active(0, 2), 0u);
  EXPECT_TRUE(activation.active_oriented(0, 2).empty());
}

TEST(PathActivation, FlagSnapshotIsSortedAndStable) {
  PathSystem ps;
  ps.add(Path{2, 3, {4}});
  ps.add(Path{0, 1, {0}});
  ps.add(Path{0, 1, {1, 2}});
  PathActivation activation(ps);

  const std::vector<ActivationFlag> snap = activation.flag_snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Sorted by (pair_key, extra, index): pair (0,1) first with both base
  // candidates, then pair (2,3).
  EXPECT_EQ(snap[0].pair_key, (std::uint64_t{0} << 32) | 1u);
  EXPECT_EQ(snap[0].index, 0u);
  EXPECT_EQ(snap[1].pair_key, (std::uint64_t{0} << 32) | 1u);
  EXPECT_EQ(snap[1].index, 1u);
  EXPECT_EQ(snap[2].pair_key, (std::uint64_t{2} << 32) | 3u);
  for (const ActivationFlag& f : snap) {
    EXPECT_FALSE(f.extra);
    EXPECT_TRUE(f.active);
  }
  // Snapshots of an unchanged mask are identical.
  EXPECT_EQ(activation.flag_snapshot(), snap);
}

TEST(PathActivation, HammingCountsFlipsAndOneSidedKeys) {
  PathSystem ps;
  ps.add(Path{0, 1, {0}});
  ps.add(Path{0, 1, {1, 2}});
  PathActivation activation(ps);
  const std::vector<ActivationFlag> before = activation.flag_snapshot();
  EXPECT_EQ(activation_hamming(before, before), 0u);

  activation.set_active(0, 1, 1, false);
  const std::vector<ActivationFlag> flipped = activation.flag_snapshot();
  EXPECT_EQ(activation_hamming(before, flipped), 1u);

  // A newly installed extra is a key present only in the new snapshot —
  // it counts as churn even though no shared flag changed.
  activation.add_extra(Path{0, 1, {3}});
  const std::vector<ActivationFlag> extended = activation.flag_snapshot();
  ASSERT_EQ(extended.size(), 3u);
  EXPECT_TRUE(extended.back().extra);
  EXPECT_EQ(activation_hamming(flipped, extended), 1u);
  EXPECT_EQ(activation_hamming(before, extended), 2u);
  // Symmetric: removal reads the same as installation.
  EXPECT_EQ(activation_hamming(extended, before), 2u);
}

TEST(Router, EmptyDemandIsZero) {
  const Graph g = make_grid(2, 2);
  PathSystem ps;
  const SemiObliviousRouter router(g, ps);
  const FractionalRoute route = router.route_fractional(Demand{});
  EXPECT_DOUBLE_EQ(route.congestion, 0.0);
}

TEST(Router, ExactAndMwuBackendsAgree) {
  const Graph g = make_torus(4, 4);
  RaeckeOptions racke;
  racke.seed = 5;
  const RaeckeRouting oblivious(g, racke);
  SampleOptions sample;
  sample.k = 4;
  const PathSystem ps = sample_path_system_all_pairs(oblivious, sample, 6);
  Rng rng(7);
  const Demand d = random_permutation_demand(g, rng);

  RouterOptions exact_options;
  exact_options.backend = LpBackend::kExact;
  RouterOptions mwu_options;
  mwu_options.backend = LpBackend::kMwu;
  mwu_options.epsilon = 0.05;

  const double exact =
      SemiObliviousRouter(g, ps, exact_options).route_fractional(d).congestion;
  const double mwu =
      SemiObliviousRouter(g, ps, mwu_options).route_fractional(d).congestion;
  EXPECT_LE(exact, mwu + 1e-6);
  EXPECT_LE(mwu, exact * 1.06 + 1e-6);
}

TEST(Router, MoreCandidatesNeverHurt) {
  // Monotonicity: adding paths can only lower the LP optimum.
  const Graph g = make_hypercube(4);
  const ValiantHypercube routing(g, 4);
  Rng rng(8);
  const Demand d = random_permutation_demand(g, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    SampleOptions sample;
    sample.k = k;
    // Same seed: k-sample is a superset-in-distribution... use nested
    // construction instead: sample k once and reuse prefixes.
    const PathSystem ps =
        sample_path_system_for_demand(routing, d, sample, 99);
    const double congestion =
        SemiObliviousRouter(g, ps).route_fractional(d).congestion;
    // Not strictly monotone across independent samples, but with the same
    // seed the first k paths coincide (same per-pair stream), so the
    // candidate sets are nested and the optimum is monotone.
    EXPECT_LE(congestion, prev + 1e-9);
    prev = congestion;
  }
}

TEST(RouterIntegral, RoutesEveryPacketOnCandidate) {
  const Graph g = make_hypercube(4);
  const ValiantHypercube routing(g, 4);
  Rng rng(9);
  const Demand d = random_permutation_demand(g, rng);
  SampleOptions sample;
  sample.k = 4;
  const PathSystem ps = sample_path_system_for_demand(routing, d, sample, 10);
  const SemiObliviousRouter router(g, ps);
  Rng round_rng(11);
  const IntegralRoute route = router.route_integral(d, round_rng);
  EXPECT_EQ(route.packet_paths.size(),
            static_cast<std::size_t>(std::llround(d.total())));
  for (const Path& p : route.packet_paths) {
    EXPECT_TRUE(is_simple_path(g, p));
  }
  // Integral congestion within rounding distance of the fractional one.
  const FractionalRoute frac = router.route_fractional(d);
  EXPECT_GE(route.congestion + 1e-9, frac.congestion);
  EXPECT_LE(route.congestion,
            2 * frac.congestion + 2 * std::log2(g.num_edges()) + 2);
}

TEST(RouterIntegral, LocalSearchImprovesBadRounding) {
  // Two commodities, each with a private path and a shared path; rounding
  // onto the shared path must be fixed by local search.
  Graph g(4);
  const EdgeId shared = g.add_edge(0, 1);
  const EdgeId a = g.add_edge(0, 2);
  const EdgeId a2 = g.add_edge(2, 1);
  const EdgeId b = g.add_edge(0, 3);
  const EdgeId b2 = g.add_edge(3, 1);
  PathSystem ps;
  ps.add(Path{0, 1, {shared}});
  ps.add(Path{0, 1, {a, a2}});
  ps.add(Path{0, 1, {b, b2}});
  Demand d;
  d.add(0, 1, 3.0);
  const SemiObliviousRouter router(g, ps);
  Rng rng(12);
  const IntegralRoute route = router.route_integral(d, rng);
  // Optimal integral: one packet per route → congestion 1.
  EXPECT_NEAR(route.congestion, 1.0, 1e-9);
}

TEST(RouterIntegral, RejectsFractionalDemand) {
  const Graph g = make_grid(2, 2);
  PathSystem ps;
  ps.add(Path{0, 1, {0}});
  Demand d;
  d.add(0, 1, 0.5);
  const SemiObliviousRouter router(g, ps);
  Rng rng(13);
  EXPECT_THROW(router.route_integral(d, rng), CheckError);
}

TEST(Evaluate, RatioAgainstOptIsSane) {
  const Graph g = make_hypercube(5);
  const ValiantHypercube routing(g, 5);
  SampleOptions sample;
  sample.k = 8;
  const PathSystem ps = sample_path_system_all_pairs(routing, sample, 14);
  Rng rng(15);
  const Demand d = random_permutation_demand(g, rng);
  const CompetitiveReport report = evaluate_path_system(g, ps, d);
  EXPECT_GE(report.ratio, 1.0 - 0.1);  // can't beat OPT (mod ε slack)
  EXPECT_LT(report.ratio, 10.0);       // k = 8 samples are plenty here
  EXPECT_LE(report.opt_lower, report.opt + 1e-9);
}

TEST(Evaluate, EmptyDemandRatioOne) {
  const Graph g = make_grid(2, 2);
  const CompetitiveReport r = competitive_ratio(g, 0.0, Demand{});
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);
}

TEST(Attribution, DiamondSplitsAttributeExactly) {
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(0, 2);
  const EdgeId e2 = g.add_edge(1, 3);
  const EdgeId e3 = g.add_edge(2, 3);
  PathSystem ps;
  ps.add(Path{0, 3, {e0, e2}});
  ps.add(Path{0, 3, {e1, e3}});
  Demand d;
  d.add(0, 3, 1.0);
  const SemiObliviousRouter router(g, ps);
  const FractionalRoute route = router.route_fractional(d);
  const CongestionAttribution a = router.attribute(route);
  // All four unit-capacity edges carry the half split.
  EXPECT_EQ(a.loaded_links, 4u);
  ASSERT_EQ(a.links.size(), 4u);
  EXPECT_NEAR(a.max_utilization, route.congestion, 1e-9);
  for (const LinkAttribution& link : a.links) {
    EXPECT_NEAR(link.utilization, 0.5, 1e-6);
    ASSERT_EQ(link.contributors.size(), 1u);
    EXPECT_EQ(link.contributors[0].src, 0u);
    EXPECT_EQ(link.contributors[0].dst, 3u);
    EXPECT_NEAR(link.contributors[0].share, link.utilization, 1e-12);
  }
}

TEST(Attribution, SharesSumToUtilizationPerLink) {
  const Graph g = make_grid(3, 3);
  const KspRouting routing(g, 4);
  SampleOptions sample;
  sample.k = 3;
  const PathSystem ps = sample_path_system_all_pairs(routing, sample, 7);
  const Demand d = gravity_demand(g, 12.0);
  const SemiObliviousRouter router(g, ps);
  const FractionalRoute route = router.route_fractional(d);
  const CongestionAttribution a = router.attribute(route, 5);
  ASSERT_FALSE(a.links.empty());
  EXPECT_LE(a.links.size(), 5u);
  EXPECT_GE(a.loaded_links, a.links.size());
  EXPECT_NEAR(a.max_utilization, route.congestion, 1e-9);
  double previous = a.links.front().utilization;
  for (const LinkAttribution& link : a.links) {
    EXPECT_LE(link.utilization, previous + 1e-12);  // sorted, heaviest first
    previous = link.utilization;
    double share_sum = 0;
    double load_sum = 0;
    for (const PathContribution& c : link.contributors) {
      EXPECT_GT(c.load, 0.0);
      share_sum += c.share;
      load_sum += c.load;
    }
    EXPECT_NEAR(share_sum, link.utilization, 1e-9);
    EXPECT_NEAR(load_sum, link.load, 1e-9);
    // Contributors sorted by load, heaviest first.
    for (std::size_t i = 1; i < link.contributors.size(); ++i) {
      EXPECT_LE(link.contributors[i].load,
                link.contributors[i - 1].load + 1e-12);
    }
  }
}

TEST(Attribution, JsonShapeCarriesShareInvariant) {
  const Graph g = make_grid(3, 3);
  const KspRouting routing(g, 4);
  SampleOptions sample;
  sample.k = 2;
  const PathSystem ps = sample_path_system_all_pairs(routing, sample, 9);
  const Demand d = gravity_demand(g, 8.0);
  const SemiObliviousRouter router(g, ps);
  const FractionalRoute route = router.route_fractional(d);
  const telemetry::JsonValue doc =
      attribution_to_json(router.attribute(route, 4));
  ASSERT_TRUE(doc.has("links"));
  ASSERT_TRUE(doc.has("max_utilization"));
  ASSERT_TRUE(doc.has("loaded_links"));
  const telemetry::JsonValue& links = doc.at("links");
  ASSERT_GT(links.size(), 0u);
  for (std::size_t i = 0; i < links.size(); ++i) {
    const telemetry::JsonValue& link = links.at(i);
    double share_sum = 0;
    const telemetry::JsonValue& contributors = link.at("contributors");
    for (std::size_t c = 0; c < contributors.size(); ++c) {
      share_sum += contributors.at(c).at("share").as_number();
    }
    EXPECT_NEAR(share_sum, link.at("utilization").as_number(), 1e-6);
  }
}

}  // namespace
}  // namespace sor
