// Unit tests for src/demand: the sparse demand matrix and the workload
// generators (permutation / hypercube-adversarial / gravity / etc).

#include <gtest/gtest.h>

#include <cmath>

#include "demand/demand.hpp"
#include "demand/generators.hpp"
#include "graph/generators.hpp"

namespace sor {
namespace {

TEST(Demand, AccumulatesUnorderedPairs) {
  Demand d;
  d.add(3, 1, 2.0);
  d.add(1, 3, 0.5);
  EXPECT_DOUBLE_EQ(d.at(1, 3), 2.5);
  EXPECT_DOUBLE_EQ(d.at(3, 1), 2.5);
  EXPECT_EQ(d.support_size(), 1u);
  EXPECT_DOUBLE_EQ(d.total(), 2.5);
  EXPECT_DOUBLE_EQ(d.max_entry(), 2.5);
}

TEST(Demand, ZeroAddIsNoop) {
  Demand d;
  d.add(0, 1, 0.0);
  EXPECT_TRUE(d.empty());
  EXPECT_DOUBLE_EQ(d.at(0, 1), 0.0);
}

TEST(Demand, RejectsInvalidEntries) {
  Demand d;
  EXPECT_THROW(d.add(2, 2, 1.0), CheckError);
  EXPECT_THROW(d.add(0, 1, -1.0), CheckError);
}

TEST(Demand, ScaleAndSum) {
  Demand a;
  a.add(0, 1, 1.0);
  a.add(1, 2, 2.0);
  Demand b;
  b.add(1, 2, 3.0);
  b.add(4, 5, 1.0);
  const Demand s = Demand::sum(a, b);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(s.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(s.at(4, 5), 1.0);

  Demand c = a;
  c.scale(2.0);
  EXPECT_DOUBLE_EQ(c.at(1, 2), 4.0);
  EXPECT_THROW(c.scale(0.0), CheckError);
}

TEST(Demand, CommoditiesSortedAndComplete) {
  Demand d;
  d.add(5, 2, 1.0);
  d.add(0, 9, 2.0);
  d.add(1, 3, 3.0);
  const auto commodities = d.commodities();
  ASSERT_EQ(commodities.size(), 3u);
  EXPECT_LE(commodities[0].src, commodities[1].src);
  double total = 0;
  for (const Commodity& c : commodities) {
    EXPECT_LT(c.src, c.dst);  // canonical order
    total += c.amount;
  }
  EXPECT_DOUBLE_EQ(total, d.total());
}

TEST(Demand, IntegralityAndOneDemandChecks) {
  Demand d;
  d.add(0, 1, 2.0);
  EXPECT_TRUE(d.is_integral());
  EXPECT_FALSE(d.is_one_demand());
  Demand e;
  e.add(0, 1, 0.5);
  EXPECT_FALSE(e.is_integral());
  EXPECT_TRUE(e.is_one_demand());
}

TEST(Generators, RandomPermutationIsPermutationLike) {
  const Graph g = make_hypercube(5);
  Rng rng(9);
  const Demand d = random_permutation_demand(g, rng);
  EXPECT_GT(d.support_size(), 0u);
  // Each vertex participates in at most 2 pairs worth of demand
  // (v→π(v) and π⁻¹(v)→v), so per-vertex incident demand <= 2.
  std::vector<double> incident(g.num_vertices(), 0);
  for (const Commodity& c : d.commodities()) {
    incident[c.src] += c.amount;
    incident[c.dst] += c.amount;
  }
  for (double x : incident) EXPECT_LE(x, 2.0 + 1e-9);
  EXPECT_TRUE(d.is_integral());
}

TEST(Generators, PermutationOverSubset) {
  const Graph g = make_grid(4, 4);
  const std::vector<Vertex> endpoints{0, 3, 12, 15};
  Rng rng(17);
  const Demand d = random_permutation_demand(endpoints, rng);
  for (const Commodity& c : d.commodities()) {
    EXPECT_TRUE(std::count(endpoints.begin(), endpoints.end(), c.src) == 1);
    EXPECT_TRUE(std::count(endpoints.begin(), endpoints.end(), c.dst) == 1);
  }
}

TEST(Generators, BitComplement) {
  const Demand d = bit_complement_demand(4);
  // 16 vertices pair up into 8 antipodal pairs, each of weight 2.
  EXPECT_EQ(d.support_size(), 8u);
  EXPECT_DOUBLE_EQ(d.at(0, 15), 2.0);
  EXPECT_DOUBLE_EQ(d.at(5, 10), 2.0);
  EXPECT_DOUBLE_EQ(d.total(), 16.0);
}

TEST(Generators, BitReversal) {
  const Demand d = bit_reversal_demand(4);
  // 0b0001 ↔ 0b1000.
  EXPECT_DOUBLE_EQ(d.at(1, 8), 2.0);
  // Palindromic addresses (0b0000, 0b0110, ...) are fixed points: absent.
  EXPECT_DOUBLE_EQ(d.at(0, 0 ^ 1) + 0, d.at(0, 1));  // no demand at (0,*)
  for (const Commodity& c : d.commodities()) {
    EXPECT_NE(c.src, c.dst);
  }
}

TEST(Generators, TransposeSwapsHalves) {
  const Demand d = transpose_demand(4);
  // v = 0b0111 (lo=3, hi=1) ↔ 0b1101 (lo=1... wait lo=0b11=3 hi=0b01=1 →
  // transposed = (3 << 2) | 1 = 0b1101 = 13.
  EXPECT_DOUBLE_EQ(d.at(7, 13), 2.0);
  EXPECT_THROW(transpose_demand(5), CheckError);  // odd dimension
}

TEST(Generators, UniformRandomPairs) {
  const Graph g = make_grid(5, 5);
  Rng rng(3);
  const Demand d = uniform_random_pairs(g, 40, 0.5, rng);
  EXPECT_DOUBLE_EQ(d.total(), 20.0);
  for (const Commodity& c : d.commodities()) {
    EXPECT_NE(c.src, c.dst);
    EXPECT_LT(c.dst, g.num_vertices());
  }
}

TEST(Generators, GravityNormalizesTotal) {
  const WanTopology wan = make_abilene();
  const Demand d = gravity_demand(wan.graph, 100.0);
  EXPECT_NEAR(d.total(), 100.0, 1e-9);
  // Gravity weights scale with incident capacity: the largest entries
  // involve high-degree hubs.
  EXPECT_GT(d.support_size(), 40u);
}

TEST(Generators, GravityOverEndpointsOnly) {
  const Graph g = make_fat_tree(4);
  const auto hosts = fat_tree_edge_switches(4);
  const Demand d = gravity_demand(g, hosts, 10.0);
  EXPECT_NEAR(d.total(), 10.0, 1e-9);
  for (const Commodity& c : d.commodities()) {
    EXPECT_EQ(std::count(hosts.begin(), hosts.end(), c.src), 1);
    EXPECT_EQ(std::count(hosts.begin(), hosts.end(), c.dst), 1);
  }
}

TEST(Generators, PerturbedGravityStaysPositiveAndVaries) {
  const WanTopology wan = make_b4();
  Rng rng(5);
  const auto verts = all_vertices(wan.graph);
  const Demand base = gravity_demand(wan.graph, verts, 50.0);
  const Demand noisy =
      perturbed_gravity_demand(wan.graph, verts, 50.0, 0.4, rng);
  EXPECT_EQ(noisy.support_size(), base.support_size());
  bool differs = false;
  for (const Commodity& c : base.commodities()) {
    const double v = noisy.at(c.src, c.dst);
    EXPECT_GT(v, 0.0);
    if (std::abs(v - c.amount) > 1e-6) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, AllToAll) {
  const std::vector<Vertex> endpoints{0, 1, 2, 3};
  const Demand d = all_to_all_demand(endpoints, 2.0);
  EXPECT_EQ(d.support_size(), 6u);
  EXPECT_DOUBLE_EQ(d.total(), 12.0);
}

}  // namespace
}  // namespace sor
