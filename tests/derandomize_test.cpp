// Tests for the derandomized (conditional-expectations greedy) path
// selection and the link-failure machinery.

#include <gtest/gtest.h>

#include "core/derandomize.hpp"
#include "core/failures.hpp"
#include "core/router.hpp"
#include "core/sampler.hpp"
#include "demand/generators.hpp"
#include "graph/generators.hpp"
#include "oblivious/racke_routing.hpp"
#include "oblivious/valiant.hpp"

namespace sor {
namespace {

TEST(Derandomize, ProducesExactlyKPerPair) {
  const Graph g = make_hypercube(4);
  const ValiantHypercube routing(g, 4);
  const auto pairs = all_pairs(all_vertices(g));
  DerandomizeOptions options;
  options.k = 3;
  options.pool = 8;
  const PathSystem ps = derandomized_path_system(routing, pairs, options);
  EXPECT_EQ(ps.num_pairs(), pairs.size());
  for (const VertexPair& pair : ps.pairs()) {
    EXPECT_EQ(ps.canonical_paths(pair.a, pair.b).size(), 3u);
    for (const Path& p : ps.canonical_paths(pair.a, pair.b)) {
      EXPECT_TRUE(is_simple_path(g, p));
    }
  }
}

TEST(Derandomize, IsDeterministic) {
  const Graph g = make_grid(4, 4);
  RaeckeOptions racke;
  racke.seed = 1;
  const RaeckeRouting routing(g, racke);
  const auto pairs = all_pairs(all_vertices(g));
  DerandomizeOptions options;
  options.k = 2;
  options.pool = 6;
  const PathSystem a = derandomized_path_system(routing, pairs, options);
  const PathSystem b = derandomized_path_system(routing, pairs, options);
  for (const VertexPair& pair : a.pairs()) {
    const auto pa = a.canonical_paths(pair.a, pair.b);
    const auto pb = b.canonical_paths(pair.a, pair.b);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  }
}

TEST(Derandomize, BeatsNaiveSamplingOnAdversarialDemand) {
  // The greedy spreads load globally, so on the bit-complement demand a
  // derandomized k=2 system should be no worse than a random k=2 sample
  // (statistically; we assert it stays within the same ballpark and is
  // much better than k=1 deterministic shortest paths).
  const std::uint32_t d = 5;
  const Graph g = make_hypercube(d);
  const ValiantHypercube routing(g, d);
  const auto pairs = all_pairs(all_vertices(g));
  const Demand demand = bit_complement_demand(d);

  DerandomizeOptions options;
  options.k = 2;
  options.pool = 12;
  const PathSystem greedy = derandomized_path_system(routing, pairs, options);
  const double greedy_cong =
      SemiObliviousRouter(g, greedy).route_fractional(demand).congestion;

  SampleOptions sample;
  sample.k = 2;
  const PathSystem random = sample_path_system(routing, pairs, sample, 5);
  const double random_cong =
      SemiObliviousRouter(g, random).route_fractional(demand).congestion;

  EXPECT_LE(greedy_cong, random_cong * 1.5 + 1e-9);
  EXPECT_LT(greedy_cong, 10.0);  // far from the Θ(√n/d) deterministic blowup
}

TEST(Failures, ScenarioKeepsConnectivityAndCount) {
  const Graph g = make_torus(4, 4);
  Rng rng(1);
  const FailureScenario scenario = random_edge_failures(g, 3, rng);
  std::size_t dead = 0;
  for (bool alive : scenario.alive) dead += !alive;
  EXPECT_EQ(dead, 3u);
  std::vector<EdgeId> edge_map;
  const Graph survivor = surviving_graph(g, scenario, edge_map);
  EXPECT_TRUE(survivor.is_connected());
  EXPECT_EQ(survivor.num_edges(), g.num_edges() - 3);
  // Edge map is a bijection onto the survivor's ids for alive edges.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (scenario.alive[e]) {
      ASSERT_NE(edge_map[e], kInvalidEdge);
      EXPECT_EQ(survivor.edge(edge_map[e]).u, g.edge(e).u);
    } else {
      EXPECT_EQ(edge_map[e], kInvalidEdge);
    }
  }
}

TEST(Failures, SurvivingPathsDropExactlyHitPaths) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const EdgeId e02 = g.add_edge(0, 2);
  const EdgeId e23 = g.add_edge(2, 3);
  PathSystem ps;
  ps.add(Path{0, 2, {e01, e12}});
  ps.add(Path{0, 2, {e02}});
  ps.add(Path{0, 3, {e02, e23}});
  FailureScenario scenario;
  scenario.alive.assign(g.num_edges(), true);
  scenario.alive[e02] = false;
  const PathSystem alive = surviving_paths(ps, scenario);
  EXPECT_EQ(alive.canonical_paths(0, 2).size(), 1u);
  EXPECT_FALSE(alive.has_pair(0, 3));
  const auto stranded = stranded_pairs(ps, scenario);
  ASSERT_EQ(stranded.size(), 1u);
  EXPECT_EQ(stranded[0].a, 0u);
  EXPECT_EQ(stranded[0].b, 3u);
}

TEST(Failures, DiverseSamplesRarelyStrand) {
  // With k = 6 Räcke samples per pair on a torus, failing 2 links should
  // strand (almost) no pair — SMORE's robustness claim in miniature.
  const Graph g = make_torus(5, 5);
  RaeckeOptions racke;
  racke.seed = 2;
  const RaeckeRouting routing(g, racke);
  SampleOptions sample;
  sample.k = 6;
  const PathSystem ps = sample_path_system_all_pairs(routing, sample, 3);
  Rng rng(4);
  std::size_t total_stranded = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const FailureScenario scenario = random_edge_failures(g, 2, rng);
    total_stranded += stranded_pairs(ps, scenario).size();
  }
  EXPECT_LE(total_stranded, 3u);
}

TEST(Failures, GomoryHuBackedLambdaSamplingMatchesDirect) {
  const Graph g = make_dumbbell(4, 3);
  const GomoryHuTree tree(g);
  RaeckeOptions racke;
  racke.seed = 5;
  const RaeckeRouting routing(g, racke);
  const std::vector<VertexPair> pairs{VertexPair::canonical(0, 4),
                                      VertexPair::canonical(1, 2)};
  SampleOptions direct;
  direct.k = 2;
  direct.lambda_cap = 4;
  SampleOptions via_tree = direct;
  via_tree.gomory_hu = &tree;
  const PathSystem a = sample_path_system(routing, pairs, direct, 6);
  const PathSystem b = sample_path_system(routing, pairs, via_tree, 6);
  for (const VertexPair& pair : a.pairs()) {
    EXPECT_EQ(a.canonical_paths(pair.a, pair.b).size(),
              b.canonical_paths(pair.a, pair.b).size());
  }
}

}  // namespace
}  // namespace sor
