// Cross-thread-count determinism suite. Everything here asserts
// bit-identical results when the same computation runs on pools of 1, 2,
// and 8 workers, with the artifact cache both off and on: the chunked
// parallel_reduce fold, path-system sampling, the restricted path LP,
// and a full engine run (controller epochs + replay digest). These are
// the regression tests for the parallel_reduce combine-order fix and the
// cache's bit-identical-reuse contract.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "core/path_system_io.hpp"
#include "core/router.hpp"
#include "core/sampler.hpp"
#include "demand/demand.hpp"
#include "engine/replay.hpp"
#include "graph/generators.hpp"
#include "lp/path_lp.hpp"
#include "oblivious/valiant.hpp"
#include "serve/snapshot.hpp"
#include "telemetry/json.hpp"
#include "util/parallel.hpp"

namespace sor {
namespace {

// Runs `fn` under worker pools of size 1, 2, and 8 and returns the three
// results. Every determinism assertion below compares these for exact
// (bit-level) equality.
template <typename Fn>
auto at_pool_sizes(Fn&& fn) {
  std::vector<decltype(fn())> out;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ScopedDefaultPool scoped(workers);
    out.push_back(fn());
  }
  return out;
}

TEST(ParallelReduceDeterminism, FloatSumBitIdenticalAcrossThreadCounts) {
  // Magnitudes spanning ~16 orders: any change in the fold order changes
  // the rounding, so bit-equality here pins the combine order down.
  constexpr std::size_t kN = 10007;
  const auto body = [](std::size_t i) {
    const double sign = (i % 2 == 0) ? 1.0 : -1.0;
    return sign * std::pow(10.0, static_cast<double>(i % 17) - 8.0) /
           static_cast<double>(i + 1);
  };
  const auto combine = [](double a, double b) { return a + b; };
  const auto sums = at_pool_sizes(
      [&] { return parallel_reduce(kN, 0.0, body, combine); });
  const std::uint64_t reference = std::bit_cast<std::uint64_t>(sums[0]);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(sums[1]), reference);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(sums[2]), reference);
  EXPECT_TRUE(std::isfinite(sums[0]));
}

TEST(ParallelReduceDeterminism, ExplicitPoolMatchesDefaultPool) {
  ThreadPool pool(3);
  const auto body = [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); };
  const auto combine = [](double a, double b) { return a + b; };
  const double with_pool = parallel_reduce(4096, 0.0, body, combine, &pool);
  ScopedDefaultPool scoped(5);
  const double with_default = parallel_reduce(4096, 0.0, body, combine);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(with_pool),
            std::bit_cast<std::uint64_t>(with_default));
}

TEST(ParallelReduceDeterminism, EmptyRangeReturnsInit) {
  EXPECT_EQ(parallel_reduce(
                0, 42.5, [](std::size_t) { return 1.0; },
                [](double a, double b) { return a + b; }),
            42.5);
}

TEST(JsonNonFinite, DumpsNullAndReadsBackAsNaN) {
  telemetry::JsonValue obj = telemetry::JsonValue::object();
  obj.set("nan", telemetry::JsonValue(std::nan("")));
  obj.set("inf", telemetry::JsonValue(HUGE_VAL));
  obj.set("ninf", telemetry::JsonValue(-HUGE_VAL));
  obj.set("finite", telemetry::JsonValue(1.5));
  const std::string text = obj.dump();
  EXPECT_EQ(text, R"({"nan":null,"inf":null,"ninf":null,"finite":1.5})");
  const telemetry::JsonValue parsed = telemetry::JsonValue::parse(text);
  EXPECT_TRUE(parsed.at("nan").is_null());
  EXPECT_TRUE(std::isnan(parsed.at("nan").as_number()));
  EXPECT_TRUE(std::isnan(parsed.at("inf").as_number()));
  EXPECT_EQ(parsed.at("finite").as_number(), 1.5);
  // Round-trip is stable: dumping the parsed document reproduces the text.
  EXPECT_EQ(parsed.dump(), text);
}

std::string sample_digest() {
  const Graph g = make_hypercube(4);
  const ValiantHypercube routing(g, 4);
  SampleOptions options;
  options.k = 4;
  return serialize_path_system(
      sample_path_system_all_pairs(routing, options, 17));
}

TEST(SamplerDeterminism, IdenticalAcrossThreadCountsAndCacheModes) {
  cache::ArtifactCache::global().clear();
  cache::ArtifactCache::set_enabled(false);
  const auto uncached = at_pool_sizes(sample_digest);
  EXPECT_EQ(uncached[1], uncached[0]);
  EXPECT_EQ(uncached[2], uncached[0]);
  cache::ArtifactCache::set_enabled(true);
  const auto cached = at_pool_sizes(sample_digest);
  EXPECT_EQ(cached[0], uncached[0]);  // cold fill
  EXPECT_EQ(cached[1], uncached[0]);  // warm hits
  EXPECT_EQ(cached[2], uncached[0]);
  EXPECT_GE(cache::ArtifactCache::global().stats().hits, 2u);
}

TEST(PathLpDeterminism, MwuSolveBitIdenticalAcrossThreadCounts) {
  const Graph g = make_hypercube(4);
  const ValiantHypercube routing(g, 4);
  SampleOptions options;
  options.k = 4;
  const PathSystem system = sample_path_system_all_pairs(routing, options, 3);
  RestrictedProblem problem;
  problem.graph = &g;
  for (const VertexPair& pair : system.pairs()) {
    RestrictedCommodity c;
    c.demand = 1.0 + 0.25 * static_cast<double>(pair.a % 3);
    c.candidates = system.paths_oriented(pair.a, pair.b);
    problem.commodities.push_back(std::move(c));
  }
  const auto solutions = at_pool_sizes([&] { return solve_restricted_mwu(problem); });
  const RestrictedSolution& reference = solutions[0];
  EXPECT_GT(reference.congestion, 0.0);
  for (std::size_t s = 1; s < solutions.size(); ++s) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(solutions[s].congestion),
              std::bit_cast<std::uint64_t>(reference.congestion));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(solutions[s].lower_bound),
              std::bit_cast<std::uint64_t>(reference.lower_bound));
    EXPECT_EQ(solutions[s].phases, reference.phases);
    ASSERT_EQ(solutions[s].weights.size(), reference.weights.size());
    for (std::size_t j = 0; j < reference.weights.size(); ++j) {
      ASSERT_EQ(solutions[s].weights[j].size(), reference.weights[j].size());
      for (std::size_t p = 0; p < reference.weights[j].size(); ++p) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(solutions[s].weights[j][p]),
                  std::bit_cast<std::uint64_t>(reference.weights[j][p]));
      }
    }
  }
}

std::string engine_digest() {
  engine::EngineRunConfig config;
  config.topology = "hypercube:3";
  config.source = "sp";
  config.k = 3;
  config.seed = 23;
  config.trace.num_epochs = 4;
  const engine::EngineRunOutput out = engine::run_from_config(config);
  return engine::digest_json(out.record, out.result).dump();
}

TEST(ServeSnapshotDeterminism, SerializeBitIdenticalAcrossThreadCounts) {
  // The serving layer's byte-identity contract rides on serialize() being
  // a pure function of table CONTENT: route_fractional solved on 1, 2,
  // and 8 workers must freeze into byte-identical snapshots (digest
  // included). This pins down the sorted-emission guarantee the ctest
  // two-process digest comparison checks at the CLI level.
  const Graph g = make_hypercube(3);
  const ValiantHypercube routing(g, 3);
  SampleOptions options;
  options.k = 3;
  const PathSystem system = sample_path_system_all_pairs(routing, options, 5);
  Demand demand;
  for (const VertexPair& pair : system.pairs()) {
    demand.add(pair.a, pair.b, 1.0 + 0.5 * static_cast<double>(pair.a % 2));
  }
  RouterOptions router_options;
  router_options.backend = LpBackend::kMwu;
  const SemiObliviousRouter router(g, system, router_options);
  const auto snapshots = at_pool_sizes([&] {
    return serve::RouteSnapshot::build(
        11, split_fractions(router.route_fractional(demand)));
  });
  EXPECT_GT(snapshots[0].num_paths(), 0u);
  const std::string reference = snapshots[0].serialize();
  for (std::size_t s = 1; s < snapshots.size(); ++s) {
    EXPECT_EQ(snapshots[s].serialize(), reference);
    EXPECT_EQ(snapshots[s].digest(), snapshots[0].digest());
  }
}

TEST(EngineDeterminism, ReplayDigestIdenticalAcrossThreadCountsAndCacheModes) {
  cache::ArtifactCache::global().clear();
  cache::ArtifactCache::set_enabled(false);
  const auto uncached = at_pool_sizes(engine_digest);
  EXPECT_EQ(uncached[1], uncached[0]);
  EXPECT_EQ(uncached[2], uncached[0]);
  cache::ArtifactCache::set_enabled(true);
  const auto cached = at_pool_sizes(engine_digest);
  EXPECT_EQ(cached[0], uncached[0]);
  EXPECT_EQ(cached[1], uncached[0]);
  EXPECT_EQ(cached[2], uncached[0]);
}

}  // namespace
}  // namespace sor
