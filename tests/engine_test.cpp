// Unit tests for src/engine: trace generation/serialization, the demand
// stream, predictors, failure repair over activation masks, the epoch
// controller, and record/replay byte-identity.

#include <gtest/gtest.h>

#include <cmath>
#include <queue>
#include <sstream>

#include "engine/controller.hpp"
#include "engine/event_trace.hpp"
#include "engine/predictor.hpp"
#include "engine/repair.hpp"
#include "engine/replay.hpp"
#include "graph/generators.hpp"
#include "telemetry/json.hpp"
#include "telemetry/observer.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace sor::engine {
namespace {

// Exact equality of two sparse demand matrices (Demand has no
// operator==; commodities() is sorted, so elementwise compare works).
bool demand_equal(const Demand& a, const Demand& b) {
  const std::vector<Commodity> ca = a.commodities();
  const std::vector<Commodity> cb = b.commodities();
  if (ca.size() != cb.size()) return false;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    if (ca[i].src != cb[i].src || ca[i].dst != cb[i].dst ||
        ca[i].amount != cb[i].amount) {
      return false;
    }
  }
  return true;
}

// Connectivity of the subgraph induced by `alive` edges.
bool alive_connected(const Graph& g, const std::vector<char>& alive) {
  if (g.num_vertices() == 0) return true;
  std::vector<char> seen(g.num_vertices(), 0);
  std::queue<Vertex> queue;
  queue.push(0);
  seen[0] = 1;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop();
    for (const HalfEdge& half : g.neighbors(v)) {
      if (!alive[half.id] || seen[half.to]) continue;
      seen[half.to] = 1;
      ++reached;
      queue.push(half.to);
    }
  }
  return reached == g.num_vertices();
}

TEST(EventTrace, GenerationIsDeterministic) {
  const Graph g = make_abilene().graph;
  TraceOptions options;
  options.num_epochs = 24;
  const EventTrace a = generate_trace(g, options, 7);
  const EventTrace b = generate_trace(g, options, 7);
  EXPECT_EQ(a, b);
  const EventTrace c = generate_trace(g, options, 8);
  EXPECT_NE(a, c);
  EXPECT_GT(a.events.size(), 0u);
}

TEST(EventTrace, FailuresNeverDisconnect) {
  const Graph g = make_abilene().graph;
  TraceOptions options;
  options.num_epochs = 40;
  options.p_failure = 0.9;  // stress the connectivity guard
  options.max_concurrent_failures = 4;
  const EventTrace trace = generate_trace(g, options, 3);
  std::vector<char> alive(g.num_edges(), 1);
  for (std::size_t t = 0; t < trace.num_epochs; ++t) {
    for (const Event& e : trace.events_at(t)) {
      if (e.kind == EventKind::kLinkFailure) alive[e.edge] = 0;
      if (e.kind == EventKind::kLinkRecovery) alive[e.edge] = 1;
    }
    EXPECT_TRUE(alive_connected(g, alive)) << "epoch " << t;
  }
}

TEST(EventTrace, EventsAtReturnsContiguousRun) {
  EventTrace trace;
  trace.num_epochs = 4;
  trace.events = {{0, EventKind::kLinkFailure, 1, 0, 0},
                  {2, EventKind::kLinkRecovery, 1, 0, 0},
                  {2, EventKind::kDemandDrift, kInvalidEdge, 0.4, 9}};
  EXPECT_EQ(trace.events_at(0).size(), 1u);
  EXPECT_EQ(trace.events_at(1).size(), 0u);
  EXPECT_EQ(trace.events_at(2).size(), 2u);
  EXPECT_EQ(trace.events_at(3).size(), 0u);
}

TEST(EventTrace, SaveLoadRoundTrip) {
  const Graph g = make_b4().graph;
  TraceOptions options;
  options.num_epochs = 16;
  const EventTrace trace = generate_trace(g, options, 11);
  std::stringstream buffer;
  save_trace(trace, buffer);
  const EventTrace loaded = load_trace(buffer);
  EXPECT_EQ(trace, loaded);
}

TEST(EventTrace, LoadRejectsGarbage) {
  std::stringstream buffer("not a trace\n");
  EXPECT_THROW(load_trace(buffer), CheckError);
}

TEST(DemandStream, DeterministicPerEpoch) {
  const Graph g = make_abilene().graph;
  DemandStreamOptions options;
  DemandStream a(g, options, 5);
  DemandStream b(g, options, 5);
  EXPECT_TRUE(demand_equal(a.at_epoch(3), b.at_epoch(3)));
  // at_epoch is a pure function: asking twice gives the same matrix, and
  // jitter differs across epochs.
  EXPECT_TRUE(demand_equal(a.at_epoch(3), a.at_epoch(3)));
  EXPECT_FALSE(demand_equal(a.at_epoch(3), a.at_epoch(4)));
}

TEST(DemandStream, DriftIsDeterministicAndChangesTheMatrix) {
  const Graph g = make_abilene().graph;
  DemandStreamOptions options;
  DemandStream a(g, options, 5);
  DemandStream b(g, options, 5);
  const Demand before = a.at_epoch(2);
  a.apply_drift(0.5, 42);
  b.apply_drift(0.5, 42);
  EXPECT_TRUE(demand_equal(a.at_epoch(2), b.at_epoch(2)));
  EXPECT_FALSE(demand_equal(a.at_epoch(2), before));
}

TEST(Predictor, EwmaConvergesToConstantDemand) {
  EwmaPredictor predictor(0.5);
  Demand constant;
  constant.add(0, 1, 4.0);
  constant.add(2, 3, 1.0);
  EXPECT_TRUE(predictor.predict().empty());
  for (int i = 0; i < 12; ++i) predictor.observe(constant);
  const Demand predicted = predictor.predict();
  EXPECT_NEAR(predicted.at(0, 1), 4.0, 1e-3);
  EXPECT_NEAR(predicted.at(2, 3), 1.0, 1e-3);
  // Constant demand is perfectly predictable after the first observation.
  EXPECT_NEAR(predictor.error_summary().max, 0.0, 1e-9);
}

TEST(Predictor, PeakTracksWindowMaximum) {
  PeakPredictor predictor(2);
  Demand low;
  low.add(0, 1, 1.0);
  Demand high;
  high.add(0, 1, 5.0);
  predictor.observe(high);
  predictor.observe(low);
  EXPECT_NEAR(predictor.predict().at(0, 1), 5.0, 1e-12);
  predictor.observe(low);  // the 5.0 slides out of the window
  EXPECT_NEAR(predictor.predict().at(0, 1), 1.0, 1e-12);
}

TEST(Predictor, ErrorHistoryScoresPendingPrediction) {
  EwmaPredictor predictor(1.0);  // predicts exactly the last observation
  Demand first;
  first.add(0, 1, 2.0);
  Demand second;
  second.add(0, 1, 3.0);
  predictor.observe(first);
  EXPECT_EQ(predictor.error_summary().count, 0u);
  predictor.observe(second);
  ASSERT_EQ(predictor.error_summary().count, 1u);
  // |2 − 3| / |3|
  EXPECT_NEAR(predictor.error_summary().mean, 1.0 / 3.0, 1e-12);
}

// Diamond 0–1–3 / 0–2–3 plus a direct 0–3 edge the system does not use.
struct DiamondFixture {
  Graph g{4};
  EdgeId e01, e02, e13, e23, e03;
  PathSystem ps;

  DiamondFixture() {
    e01 = g.add_edge(0, 1);
    e02 = g.add_edge(0, 2);
    e13 = g.add_edge(1, 3);
    e23 = g.add_edge(2, 3);
    e03 = g.add_edge(0, 3);
    ps.add(Path{0, 3, {e01, e13}});
    ps.add(Path{0, 3, {e02, e23}});
  }
};

TEST(Repair, FailureDeactivatesOnlyAffectedCandidates) {
  DiamondFixture f;
  PathRepairer repairer(f.g, f.ps);
  const std::vector<VertexPair> support = {VertexPair::canonical(0, 3)};
  const std::vector<Event> events = {{0, EventKind::kLinkFailure, f.e01, 0, 0}};
  const RepairReport report = repairer.apply_epoch(events, support);
  EXPECT_EQ(report.deactivated, 1u);
  EXPECT_EQ(report.fallbacks_installed, 0u);
  EXPECT_FALSE(repairer.activation().is_active(0, 3, 0));
  EXPECT_TRUE(repairer.activation().is_active(0, 3, 1));
  EXPECT_EQ(repairer.activation().num_active(0, 3), 1u);
}

TEST(Repair, StrandedPairGetsMandatoryFallbackEvenWithZeroBudget) {
  DiamondFixture f;
  RepairOptions options;
  options.churn_budget = 0;
  PathRepairer repairer(f.g, f.ps, options);
  const std::vector<VertexPair> support = {VertexPair::canonical(0, 3)};
  const std::vector<Event> events = {{0, EventKind::kLinkFailure, f.e01, 0, 0},
                                     {0, EventKind::kLinkFailure, f.e23, 0, 0}};
  const RepairReport report = repairer.apply_epoch(events, support);
  EXPECT_EQ(report.deactivated, 2u);
  EXPECT_EQ(report.fallbacks_installed, 1u);
  ASSERT_EQ(repairer.activation().num_extras(0, 3), 1u);
  // BFS on the surviving graph finds the direct edge.
  EXPECT_EQ(repairer.activation().extra_path(0, 3, 0).edges,
            (std::vector<EdgeId>{f.e03}));
  EXPECT_EQ(repairer.activation().num_active(0, 3), 1u);
}

TEST(Repair, RecoveryReactivatesWithinBudget) {
  DiamondFixture f;
  PathRepairer repairer(f.g, f.ps);
  const std::vector<VertexPair> support = {VertexPair::canonical(0, 3)};
  const std::vector<Event> fail = {{0, EventKind::kLinkFailure, f.e01, 0, 0}};
  repairer.apply_epoch(fail, support);
  const std::vector<Event> recover = {
      {1, EventKind::kLinkRecovery, f.e01, 0, 0}};
  const RepairReport report = repairer.apply_epoch(recover, support);
  EXPECT_EQ(report.reactivated, 1u);
  EXPECT_EQ(report.deferred, 0u);
  EXPECT_TRUE(repairer.activation().is_active(0, 3, 0));
  EXPECT_EQ(repairer.failed_edges(), 0u);
}

TEST(Repair, ZeroBudgetDefersReactivation) {
  DiamondFixture f;
  RepairOptions options;
  options.churn_budget = 0;
  PathRepairer repairer(f.g, f.ps, options);
  const std::vector<VertexPair> support = {VertexPair::canonical(0, 3)};
  const std::vector<Event> fail = {{0, EventKind::kLinkFailure, f.e01, 0, 0}};
  repairer.apply_epoch(fail, support);
  const std::vector<Event> recover = {
      {1, EventKind::kLinkRecovery, f.e01, 0, 0}};
  const RepairReport report = repairer.apply_epoch(recover, support);
  EXPECT_EQ(report.reactivated, 0u);
  EXPECT_GE(report.deferred, 1u);
  EXPECT_FALSE(repairer.activation().is_active(0, 3, 0));
}

EngineRunConfig small_config() {
  EngineRunConfig config;
  config.topology = "wan:abilene";
  config.source = "sp";  // fast, deterministic path source for unit tests
  config.k = 3;
  config.seed = 21;
  config.trace.num_epochs = 8;
  config.stream.total = 32.0;
  return config;
}

TEST(Controller, ControlLoopIsDeterministic) {
  const EngineRunConfig config = small_config();
  const EngineRunOutput a = run_from_config(config);
  const EngineRunOutput b = run_from_config(config);
  EXPECT_EQ(digest_json(a.record, a.result).dump(2),
            digest_json(b.record, b.result).dump(2));
  EXPECT_EQ(a.result.epochs.size(), config.trace.num_epochs);
}

TEST(Controller, EveryEpochProducesFiniteCertifiedCongestion) {
  const EngineRunOutput out = run_from_config(small_config());
  for (const EpochReport& r : out.result.epochs) {
    EXPECT_GT(r.congestion, 0.0) << "epoch " << r.epoch;
    EXPECT_GE(r.solver_congestion, r.lower_bound * (1.0 - 1e-9))
        << "epoch " << r.epoch;
    EXPECT_GT(r.realized_total, 0.0);
  }
}

TEST(Controller, QuietTraceWarmAcceptsAndMatchesColdQuality) {
  // No failures, no drift, tiny jitter: after the bootstrap epoch the
  // installed split stays near-optimal, so warm starts should accept
  // without re-solving — and quality must match the cold loop.
  EngineRunConfig config = small_config();
  config.trace.p_failure = 0;
  config.trace.p_drift = 0;
  config.stream.jitter_sigma = 0.01;
  const EngineRunOutput warm = run_from_config(config);
  EXPECT_GE(warm.result.warm_accepts, 1u);

  EngineRunRecord cold_record = warm.record;
  cold_record.config.engine.warm_start = false;
  const ControlLoopResult cold = replay_record(cold_record);
  EXPECT_EQ(cold.warm_accepts, 0u);
  ASSERT_EQ(cold.epochs.size(), warm.result.epochs.size());
  for (std::size_t t = 0; t < cold.epochs.size(); ++t) {
    // Both are (1+ε) solutions of the same LP; allow both slacks.
    EXPECT_NEAR(warm.result.epochs[t].congestion, cold.epochs[t].congestion,
                0.15 * cold.epochs[t].congestion + 1e-9)
        << "epoch " << t;
  }
}

TEST(Quality, ShadowSamplingFollowsContractAndRegretIsSane) {
  EngineRunConfig config = small_config();
  config.engine.quality.shadow_every = 2;
  const EngineRunOutput out = run_from_config(config);
  ASSERT_EQ(out.result.epochs.size(), 8u);

  std::size_t sampled = 0;
  for (const EpochReport& r : out.result.epochs) {
    // Sampling is a pure function of the epoch index: every even epoch,
    // including epoch 0.
    EXPECT_EQ(r.quality.shadow_sampled, r.epoch % 2 == 0)
        << "epoch " << r.epoch;
    if (!r.quality.shadow_sampled) continue;
    ++sampled;
    EXPECT_GT(r.quality.shadow_opt, 0.0);
    EXPECT_GE(r.quality.shadow_opt,
              r.quality.shadow_lower_bound * (1.0 - 1e-9));
    // Achieved >= OPT and shadow_opt <= (1+eps) OPT, so the ratio can
    // undershoot 1 by at most the shadow solver's slack.
    EXPECT_GE(r.quality.regret,
              1.0 / (1.0 + config.engine.quality.shadow_epsilon) - 1e-6)
        << "epoch " << r.epoch;
  }
  EXPECT_EQ(sampled, 4u);
  EXPECT_EQ(out.result.shadow_solves, 4u);
  EXPECT_EQ(out.result.regret_summary.count, 4u);
  EXPECT_GT(out.result.regret_summary.max, 0.0);

  // Bootstrap epoch has no pending prediction; every later epoch scores.
  EXPECT_LT(out.result.epochs.front().quality.predictor_mape, 0.0);
  for (std::size_t t = 1; t < out.result.epochs.size(); ++t) {
    EXPECT_GE(out.result.epochs[t].quality.predictor_mape, 0.0);
  }
  EXPECT_EQ(out.result.predictor_mape_summary.count, 7u);
  // First epoch installs fresh state — churn is defined as zero.
  EXPECT_EQ(out.result.epochs.front().quality.mask_churn, 0u);
  EXPECT_DOUBLE_EQ(out.result.epochs.front().quality.weight_l1_drift, 0.0);
}

TEST(Quality, BlockReplaysByteIdenticallyAndStaysOutOfDigest) {
  EngineRunConfig config = small_config();
  config.engine.quality.shadow_every = 2;
  const EngineRunOutput out = run_from_config(config);
  const telemetry::JsonValue block =
      quality_to_json(out.result, config.engine.quality);

  // Round-trip the record through its text format, re-apply the quality
  // options (they are NOT serialized — replay re-passes them, like the
  // CLI's --shadow-every), and replay: the block must match byte for byte.
  std::stringstream io;
  save_record(out.record, io);
  EngineRunRecord loaded = load_record(io);
  loaded.config.engine.quality = config.engine.quality;
  const ControlLoopResult replayed = replay_record(loaded);
  EXPECT_EQ(quality_to_json(replayed, config.engine.quality).dump(2),
            block.dump(2));

  // The replay digest v1 excludes quality fields entirely: a run with
  // the observatory off digests identically.
  EngineRunConfig off = small_config();
  off.engine.quality.shadow_every = 0;
  const EngineRunOutput baseline = run_from_config(off);
  EXPECT_EQ(digest_json(out.record, out.result).dump(2),
            digest_json(baseline.record, baseline.result).dump(2));
}

TEST(Quality, DisabledShadowStillScoresPredictorAndChurn) {
  const EngineRunOutput out = run_from_config(small_config());
  EXPECT_EQ(out.result.shadow_solves, 0u);
  EXPECT_EQ(out.result.regret_summary.count, 0u);
  for (const EpochReport& r : out.result.epochs) {
    EXPECT_FALSE(r.quality.shadow_sampled);
  }
  // Predictor scoring and churn tracking are always on.
  EXPECT_EQ(out.result.predictor_mape_summary.count,
            out.result.epochs.size() - 1);
}

TEST(Controller, ExactBackendRunsTheLoop) {
  EngineRunConfig config = small_config();
  config.trace.num_epochs = 4;
  config.engine.backend = EngineBackend::kExact;
  const EngineRunOutput out = run_from_config(config);
  ASSERT_EQ(out.result.epochs.size(), 4u);
  for (const EpochReport& r : out.result.epochs) {
    EXPECT_GT(r.congestion, 0.0);
  }
}

TEST(Controller, CancelledSolvesTruncateButEveryEpochCompletes) {
  // A cancel hook that always fires is the deterministic stand-in for an
  // exhausted wall-clock budget: each cold MWU solve stops at its first
  // phase boundary with a feasible split, and the loop must keep going.
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(true);
  telemetry::Recorder::global().clear();
  auto& truncation_counter =
      telemetry::Registry::global().counter("engine/solves_truncated");
  truncation_counter.reset();

  telemetry::ProgressReporter reporter;
  reporter.cancel = [] { return true; };
  std::uint64_t truncated_epochs = 0;
  {
    telemetry::ProgressScope scope(reporter);
    const EngineRunOutput out = run_from_config(small_config());
    ASSERT_EQ(out.result.epochs.size(), 8u);
    for (const EpochReport& r : out.result.epochs) {
      EXPECT_TRUE(std::isfinite(r.congestion)) << "epoch " << r.epoch;
      EXPECT_GT(r.congestion, 0.0) << "epoch " << r.epoch;
      if (r.truncated) ++truncated_epochs;
    }
  }
  EXPECT_GE(truncated_epochs, 1u);
  EXPECT_EQ(truncation_counter.value(), truncated_epochs);

  bool saw_event = false;
  for (const telemetry::RecorderEvent& e :
       telemetry::Recorder::global().snapshot()) {
    if (e.category == "engine/solve_truncated") saw_event = true;
  }
  EXPECT_TRUE(saw_event);
  telemetry::set_enabled(was_enabled);
}

TEST(Controller, SolveDeadlineBudgetKeepsTheLoopAliveAndReportsHonestly) {
  // An aggressive 1 ms budget may or may not truncate a given solve
  // (wall-clock), so assert the invariants that must hold either way:
  // the full epoch count completes, every epoch routes a feasible split,
  // and the truncation counter agrees with the per-epoch reports.
  auto& truncation_counter =
      telemetry::Registry::global().counter("engine/solves_truncated");
  truncation_counter.reset();
  EngineRunConfig config = small_config();
  config.engine.solve_deadline_ms = 1;
  config.engine.warm_start = false;  // every epoch re-solves under budget
  const EngineRunOutput out = run_from_config(config);
  ASSERT_EQ(out.result.epochs.size(), config.trace.num_epochs);
  std::uint64_t truncated_epochs = 0;
  for (const EpochReport& r : out.result.epochs) {
    EXPECT_TRUE(std::isfinite(r.congestion)) << "epoch " << r.epoch;
    EXPECT_GT(r.congestion, 0.0) << "epoch " << r.epoch;
    if (r.truncated) ++truncated_epochs;
  }
  if (telemetry::enabled()) {
    EXPECT_EQ(truncation_counter.value(), truncated_epochs);
  }
}

TEST(Replay, DigestRecordsTruncationPerEpoch) {
  // The digest row must carry the truncated flag so replays of budgeted
  // runs are comparable (replay re-executes with the same code; with no
  // budget installed, every row must say false).
  const EngineRunOutput out = run_from_config(small_config());
  const telemetry::JsonValue digest = digest_json(out.record, out.result);
  const telemetry::JsonValue& epochs = digest.at("per_epoch");
  ASSERT_GT(epochs.size(), 0u);
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    ASSERT_TRUE(epochs.at(i).has("truncated"));
    EXPECT_FALSE(epochs.at(i).at("truncated").as_bool());
  }
}

TEST(Replay, RecordRoundTripsAndReplaysByteIdentically) {
  const EngineRunOutput out = run_from_config(small_config());
  std::stringstream buffer;
  save_record(out.record, buffer);
  const EngineRunRecord loaded = load_record(buffer);
  EXPECT_EQ(loaded.trace, out.record.trace);
  const ControlLoopResult replayed = replay_record(loaded);
  EXPECT_EQ(digest_json(loaded, replayed).dump(2),
            digest_json(out.record, out.result).dump(2));
}

TEST(Replay, BuildTopologyRejectsUnknownSpecs) {
  EXPECT_THROW(build_topology("abilene"), CheckError);
  EXPECT_THROW(build_topology("wan:nowhere"), CheckError);
  EXPECT_EQ(build_topology("hypercube:3").num_vertices(), 8u);
}

}  // namespace
}  // namespace sor::engine
