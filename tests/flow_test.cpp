// Unit tests for src/flow: Dinic max-flow / min-cut, Hopcroft–Karp,
// congestion accounting, and the Garg–Könemann max-concurrent-flow OPT
// oracle (cross-validated against hand-computable instances).

#include <gtest/gtest.h>

#include <cmath>

#include "demand/generators.hpp"
#include "flow/congestion.hpp"
#include "flow/matching.hpp"
#include "flow/maxflow.hpp"
#include "flow/mcf.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"

namespace sor {
namespace {

TEST(MaxFlow, SingleEdge) {
  Graph g(2);
  g.add_edge(0, 1, 3.5);
  const MaxFlowResult r = max_flow(g, 0, 1);
  EXPECT_DOUBLE_EQ(r.value, 3.5);
  EXPECT_TRUE(r.source_side[0]);
  EXPECT_FALSE(r.source_side[1]);
}

TEST(MaxFlow, ParallelEdgesSum) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(min_cut_value(g, 0, 1), 3.0);
}

TEST(MaxFlow, SeriesBottleneck) {
  Graph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(min_cut_value(g, 0, 2), 2.0);
  const MaxFlowResult r = max_flow(g, 0, 2);
  // Min cut separates {0,1} from {2}.
  EXPECT_TRUE(r.source_side[0]);
  EXPECT_TRUE(r.source_side[1]);
  EXPECT_FALSE(r.source_side[2]);
}

TEST(MaxFlow, DiamondHasTwoDisjointPaths) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(min_cut_value(g, 0, 3), 2.0);
}

TEST(MaxFlow, HypercubeLeafCut) {
  // In a hypercube of dimension d, min cut between any two vertices is d.
  const Graph g = make_hypercube(4);
  EXPECT_DOUBLE_EQ(min_cut_value(g, 0, 15), 4.0);
  EXPECT_DOUBLE_EQ(min_cut_value(g, 3, 12), 4.0);
}

TEST(MaxFlow, TwoStarLeafConnectivity) {
  const TwoStarGraph ts = make_two_star(4, 7);
  // Leaf to leaf across the gadget: bottleneck is the leaf edge (1), the
  // center-to-center connectivity is the number of middles (7).
  EXPECT_DOUBLE_EQ(
      min_cut_value(ts.graph, ts.left_leaves[0], ts.right_leaves[0]), 1.0);
  EXPECT_DOUBLE_EQ(min_cut_value(ts.graph, ts.center_left, ts.center_right),
                   7.0);
}

TEST(MaxFlow, FlowConservation) {
  const Graph g = make_grid(4, 4);
  const MaxFlowResult r = max_flow(g, 0, 15);
  // Net flow out of every interior vertex is zero.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (v == 0 || v == 15) continue;
    double net = 0;
    for (const HalfEdge& h : g.neighbors(v)) {
      const Edge& e = g.edge(h.id);
      const double f = r.edge_flow[h.id];
      net += (e.u == v) ? -f : f;  // positive flow goes u→v
    }
    EXPECT_NEAR(net, 0.0, 1e-9) << "vertex " << v;
  }
}

TEST(MaxFlow, CutCapacityEqualsFlowValue) {
  const Graph g = make_erdos_renyi(30, 0.2, 5);
  const MaxFlowResult r = max_flow(g, 0, 29);
  double cut = 0;
  for (const Edge& e : g.edges()) {
    if (r.source_side[e.u] != r.source_side[e.v]) cut += e.capacity;
  }
  EXPECT_NEAR(cut, r.value, 1e-6);
}

TEST(MaxFlow, MinCutAtMostClamps) {
  const Graph g = make_hypercube(4);  // λ = 4 between any pair
  EXPECT_EQ(min_cut_at_most(g, 0, 15, 2), 2u);
  EXPECT_EQ(min_cut_at_most(g, 0, 15, 10), 4u);
  EXPECT_EQ(min_cut_at_most(g, 0, 15, 1), 1u);
}

TEST(Matching, PerfectMatchingOnCompleteBipartite) {
  std::vector<std::vector<std::uint32_t>> adj(4);
  for (auto& row : adj) row = {0, 1, 2, 3};
  const auto match = maximum_bipartite_matching(4, 4, adj);
  EXPECT_EQ(matching_size(match), 4u);
  std::set<std::uint32_t> used(match.begin(), match.end());
  EXPECT_EQ(used.size(), 4u);  // injective
}

TEST(Matching, RespectsStructure) {
  // Left 0 and 1 both only like right 0 → matching size 2 is impossible.
  std::vector<std::vector<std::uint32_t>> adj{{0}, {0}, {1}};
  const auto match = maximum_bipartite_matching(3, 2, adj);
  EXPECT_EQ(matching_size(match), 2u);
}

TEST(Matching, EmptyAdjacency) {
  std::vector<std::vector<std::uint32_t>> adj(3);
  const auto match = maximum_bipartite_matching(3, 3, adj);
  EXPECT_EQ(matching_size(match), 0u);
}

TEST(Matching, HallViolatingInstance) {
  // 3 lefts share 2 rights.
  std::vector<std::vector<std::uint32_t>> adj{{0, 1}, {0, 1}, {0, 1}};
  EXPECT_EQ(matching_size(maximum_bipartite_matching(3, 2, adj)), 2u);
}

TEST(Congestion, LoadAccounting) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1, 2.0);
  const EdgeId e12 = g.add_edge(1, 2, 1.0);
  EdgeLoad load = zero_load(g);
  add_path_load(Path{0, 2, {e01, e12}}, 3.0, load);
  add_path_load(Path{0, 1, {e01}}, 1.0, load);
  EXPECT_DOUBLE_EQ(load[e01], 4.0);
  EXPECT_DOUBLE_EQ(load[e12], 3.0);
  EXPECT_DOUBLE_EQ(edge_congestion(g, e01, load), 2.0);
  EXPECT_DOUBLE_EQ(edge_congestion(g, e12, load), 3.0);
  EXPECT_DOUBLE_EQ(max_congestion(g, load), 3.0);
  EXPECT_DOUBLE_EQ(total_congestion(g, load), 5.0);
}

TEST(Mcf, SinglePathInstance) {
  // Path graph: OPT congestion of routing 2 units over capacity-1 edges
  // is exactly 2.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<Commodity> demand{{0, 2, 2.0}};
  const McfResult r = min_congestion_routing(g, demand);
  EXPECT_NEAR(r.congestion, 2.0, 0.15);
  EXPECT_LE(r.lower_bound, r.congestion + 1e-9);
  EXPECT_GE(r.congestion / r.lower_bound, 1.0 - 1e-9);
}

TEST(Mcf, SplitsAcrossParallelPaths) {
  // Diamond: 1 unit from 0 to 3 splits across two 2-hop paths → 0.5.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const std::vector<Commodity> demand{{0, 3, 1.0}};
  const McfResult r = min_congestion_routing(g, demand);
  EXPECT_NEAR(r.congestion, 0.5, 0.05);
}

TEST(Mcf, RespectsCapacities) {
  // Two parallel routes with capacities 3 and 1: 4 units → congestion 1.
  Graph g(4);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 3, 3.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const std::vector<Commodity> demand{{0, 3, 4.0}};
  const McfResult r = min_congestion_routing(g, demand);
  EXPECT_NEAR(r.congestion, 1.0, 0.07);
}

TEST(Mcf, MultiCommodityCrossTraffic) {
  // Cycle C4, two crossing unit commodities (0→2 and 1→3): each splits
  // over its two 2-hop arcs; every edge carries exactly 0.5 + 0.5 = 1?
  // No: 0→2 uses edges (0,1),(1,2) and (0,3),(3,2) — each at 0.5; same
  // shape for 1→3. Every edge serves one arc of each commodity → 1.0.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const std::vector<Commodity> demand{{0, 2, 1.0}, {1, 3, 1.0}};
  const McfResult r = min_congestion_routing(g, demand);
  EXPECT_NEAR(r.congestion, 1.0, 0.07);
}

TEST(Mcf, PermutationOnHypercubeIsNearOne) {
  // Any permutation demand on the hypercube routes with congestion O(1);
  // the bit-complement permutation needs exactly ~1 with d-way splitting.
  const Graph g = make_hypercube(3);
  const Demand d = bit_complement_demand(3);
  const McfResult r = min_congestion_routing(g, d.commodities());
  // Total demand crossing the bisection bounds OPT below by 8·2/(2·8)...
  // empirically OPT ≈ 2 (weight-2 entries, d=3 disjoint 3-hop routes ≈ 2).
  EXPECT_GT(r.congestion, 0.5);
  EXPECT_LT(r.congestion, 3.0);
  EXPECT_LE(r.lower_bound, r.congestion + 1e-9);
  EXPECT_LT(r.congestion / r.lower_bound, 1.12);
}

TEST(Mcf, GapCertificateHolds) {
  Rng rng(31);
  const Graph g = make_torus(4, 4);
  const Demand d = random_permutation_demand(g, rng);
  McfOptions options;
  options.epsilon = 0.05;
  const McfResult r = min_congestion_routing(g, d.commodities(), options);
  EXPECT_GT(r.lower_bound, 0);
  EXPECT_LE(r.congestion / r.lower_bound, 1.0 + options.epsilon + 1e-9);
}

TEST(Mcf, EmptyDemand) {
  const Graph g = make_grid(2, 2);
  const McfResult r = min_congestion_routing(g, {});
  EXPECT_DOUBLE_EQ(r.congestion, 0.0);
}

TEST(Mcf, RejectsBadCommodities) {
  const Graph g = make_grid(2, 2);
  const std::vector<Commodity> self{{1, 1, 1.0}};
  EXPECT_THROW(min_congestion_routing(g, self), CheckError);
  const std::vector<Commodity> zero{{0, 1, 0.0}};
  EXPECT_THROW(min_congestion_routing(g, zero), CheckError);
}

}  // namespace
}  // namespace sor
