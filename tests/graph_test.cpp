// Unit tests for src/graph: Graph invariants, Path operations, search
// algorithms, generators, and I/O round-trips.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/path.hpp"
#include "graph/search.hpp"
#include "util/rng.hpp"

namespace sor {
namespace {

TEST(Graph, BasicConstruction) {
  Graph g(3);
  const EdgeId e0 = g.add_edge(0, 1, 2.0);
  const EdgeId e1 = g.add_edge(1, 2);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(e0).capacity, 2.0);
  EXPECT_EQ(g.edge(e1).capacity, 1.0);
  EXPECT_EQ(g.other_endpoint(e0, 0), 1u);
  EXPECT_EQ(g.other_endpoint(e0, 1), 0u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_DOUBLE_EQ(g.incident_capacity(1), 3.0);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), CheckError);       // self loop
  EXPECT_THROW(g.add_edge(0, 5), CheckError);       // out of range
  EXPECT_THROW(g.add_edge(0, 1, 0.0), CheckError);  // zero capacity
  EXPECT_THROW(g.add_edge(0, 1, -1.0), CheckError);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
}

TEST(Path, WalkAndSimpleChecks) {
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const EdgeId e23 = g.add_edge(2, 3);
  const EdgeId e03 = g.add_edge(0, 3);

  Path p{0, 3, {e01, e12, e23}};
  EXPECT_TRUE(is_walk(g, p));
  EXPECT_TRUE(is_simple_path(g, p));
  EXPECT_EQ(p.hops(), 3u);

  Path direct{0, 3, {e03}};
  EXPECT_TRUE(is_simple_path(g, direct));

  Path bad{0, 3, {e01, e23}};  // not consecutive
  EXPECT_FALSE(is_walk(g, bad));

  Path loopy{0, 0, {e01, e12, e23, e03}};  // cycle: walk, not simple
  EXPECT_TRUE(is_walk(g, loopy));
  EXPECT_FALSE(is_simple_path(g, loopy));
}

TEST(Path, VerticesAndFromVertices) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const std::vector<Vertex> verts{0, 1, 2, 3};
  const Path p = path_from_vertices(g, verts);
  EXPECT_EQ(path_vertices(g, p), verts);
  EXPECT_EQ(p.src, 0u);
  EXPECT_EQ(p.dst, 3u);

  const std::vector<Vertex> nonadjacent{0, 2};
  EXPECT_THROW(path_from_vertices(g, nonadjacent), CheckError);
}

TEST(Path, SimplifyWalkRemovesLoops) {
  // 0-1-2-0 triangle plus 2-3.
  Graph g(4);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const EdgeId e20 = g.add_edge(2, 0);
  const EdgeId e23 = g.add_edge(2, 3);

  // Walk 0→1→2→0→... wait, go 0→1→2→0 then 0→1→2→3: loops back to 0.
  Path walk{0, 3, {e01, e12, e20, e01, e12, e23}};
  ASSERT_TRUE(is_walk(g, walk));
  const Path simple = simplify_walk(g, walk);
  EXPECT_TRUE(is_simple_path(g, simple));
  EXPECT_EQ(simple.src, 0u);
  EXPECT_EQ(simple.dst, 3u);
  EXPECT_LE(simple.hops(), walk.hops());
}

TEST(Path, SimplifyPreservesAlreadySimple) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const Path p{0, 2, {e01, e12}};
  EXPECT_EQ(simplify_walk(g, p), p);
}

TEST(Path, ConcatenateChecksEndpoints) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const Path a{0, 1, {e01}};
  const Path b{1, 2, {e12}};
  const Path joined = concatenate(a, b);
  EXPECT_EQ(joined.src, 0u);
  EXPECT_EQ(joined.dst, 2u);
  EXPECT_EQ(joined.hops(), 2u);
  EXPECT_THROW(concatenate(b, a), CheckError);
}

TEST(Search, BfsDistancesOnGrid) {
  const Graph g = make_grid(3, 3);
  const SpTree tree = bfs(g, 0);
  EXPECT_EQ(tree.hops[0], 0u);
  EXPECT_EQ(tree.hops[8], 4u);  // opposite corner: manhattan distance
  const Path p = tree.extract_path(g, 8);
  EXPECT_TRUE(is_simple_path(g, p));
  EXPECT_EQ(p.hops(), 4u);
}

TEST(Search, DijkstraRespectsLengths) {
  // Triangle where the two-hop route is cheaper than the direct edge.
  Graph g(3);
  g.add_edge(0, 1);  // e0
  g.add_edge(1, 2);  // e1
  g.add_edge(0, 2);  // e2
  const std::vector<double> lengths{1.0, 1.0, 5.0};
  const Path p = shortest_path(g, 0, 2, lengths);
  EXPECT_EQ(p.hops(), 2u);
  const SpTree tree = dijkstra(g, 0, lengths);
  EXPECT_DOUBLE_EQ(tree.dist[2], 2.0);
  EXPECT_EQ(tree.hops[2], 2u);
}

TEST(Search, DijkstraMatchesBfsOnUnitLengths) {
  Rng rng(3);
  const Graph g = make_erdos_renyi(40, 0.15, 7);
  const std::vector<double> unit(g.num_edges(), 1.0);
  for (Vertex s = 0; s < 5; ++s) {
    const SpTree b = bfs(g, s);
    const SpTree d = dijkstra(g, s, unit);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(d.dist[v], static_cast<double>(b.hops[v]));
    }
  }
}

TEST(Search, HopBallAndDiameter) {
  const Graph g = make_grid(3, 3);
  const auto ball = hop_ball(g, 4, 1);  // center of the grid
  EXPECT_EQ(ball.size(), 5u);           // center + 4 neighbours
  EXPECT_EQ(hop_diameter(g), 4u);
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // n·d/2
  EXPECT_TRUE(g.is_connected());
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(hop_diameter(g), 4u);
}

TEST(Generators, GridAndTorus) {
  const Graph grid = make_grid(4, 5);
  EXPECT_EQ(grid.num_vertices(), 20u);
  EXPECT_EQ(grid.num_edges(), 4u * 4 + 5u * 3);
  EXPECT_TRUE(grid.is_connected());

  const Graph torus = make_torus(4, 5);
  EXPECT_EQ(torus.num_vertices(), 20u);
  EXPECT_EQ(torus.num_edges(), 40u);  // 2 per vertex
  for (Vertex v = 0; v < torus.num_vertices(); ++v) {
    EXPECT_EQ(torus.degree(v), 4u);
  }
}

TEST(Generators, Complete) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(hop_diameter(g), 1u);
}

TEST(Generators, RandomRegularIsRegularAndConnected) {
  const Graph g = make_random_regular(50, 4, 11);
  EXPECT_TRUE(g.is_connected());
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4u);
  // Deterministic in the seed.
  const Graph g2 = make_random_regular(50, 4, 11);
  EXPECT_EQ(g.num_edges(), g2.num_edges());
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  EXPECT_THROW(make_random_regular(5, 3, 1), CheckError);
}

TEST(Generators, ErdosRenyiConnected) {
  const Graph g = make_erdos_renyi(60, 0.12, 3);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.num_vertices(), 60u);
}

TEST(Generators, FatTreeStructure) {
  const std::uint32_t k = 4;
  const Graph g = make_fat_tree(k);
  // k=4: 4 core + 4 pods × (2 agg + 2 edge) = 20 switches.
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_TRUE(g.is_connected());
  const auto edges = fat_tree_edge_switches(k);
  EXPECT_EQ(edges.size(), 8u);  // k·k/2
  for (Vertex v : edges) {
    EXPECT_LT(v, g.num_vertices());
    EXPECT_EQ(g.degree(v), 2u);  // k/2 uplinks
  }
}

TEST(Generators, PathOfCliquesAndDumbbell) {
  const Graph pc = make_path_of_cliques(3, 4);
  EXPECT_EQ(pc.num_vertices(), 12u);
  EXPECT_TRUE(pc.is_connected());
  EXPECT_EQ(pc.num_edges(), 3u * 6 + 2);

  const Graph db = make_dumbbell(5, 3);
  EXPECT_EQ(db.num_vertices(), 10u);
  EXPECT_EQ(db.num_edges(), 2u * 10 + 3);
  EXPECT_TRUE(db.is_connected());
}

TEST(Generators, TwoStar) {
  const TwoStarGraph ts = make_two_star(6, 4);
  EXPECT_EQ(ts.graph.num_vertices(), 2u + 12 + 4);
  EXPECT_EQ(ts.left_leaves.size(), 6u);
  EXPECT_EQ(ts.right_leaves.size(), 6u);
  EXPECT_EQ(ts.middles.size(), 4u);
  EXPECT_TRUE(ts.graph.is_connected());
  // Every leaf has degree 1, middles degree 2.
  for (Vertex v : ts.left_leaves) EXPECT_EQ(ts.graph.degree(v), 1u);
  for (Vertex v : ts.middles) EXPECT_EQ(ts.graph.degree(v), 2u);
  // min cut between opposite leaves is 1, between the centers it is
  // #middles.
}

TEST(Generators, WanTopologies) {
  const WanTopology abilene = make_abilene();
  EXPECT_EQ(abilene.graph.num_vertices(), 11u);
  EXPECT_EQ(abilene.graph.num_edges(), 14u);
  EXPECT_TRUE(abilene.graph.is_connected());
  EXPECT_EQ(abilene.node_names.size(), 11u);

  const WanTopology b4 = make_b4();
  EXPECT_EQ(b4.graph.num_vertices(), 12u);
  EXPECT_EQ(b4.graph.num_edges(), 19u);
  EXPECT_TRUE(b4.graph.is_connected());

  const WanTopology geant = make_geant();
  EXPECT_EQ(geant.graph.num_vertices(), 22u);
  EXPECT_EQ(geant.graph.num_edges(), 36u);
  EXPECT_TRUE(geant.graph.is_connected());
  EXPECT_EQ(geant.node_names.size(), 22u);
}

TEST(Io, EdgeListRoundTrip) {
  const Graph g = make_grid(3, 4);
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph h = read_edge_list(buffer);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e).u, g.edge(e).u);
    EXPECT_EQ(h.edge(e).v, g.edge(e).v);
    EXPECT_DOUBLE_EQ(h.edge(e).capacity, g.edge(e).capacity);
  }
}

TEST(Io, SkipsCommentsAndDefaultsCapacity) {
  std::stringstream in(
      "# comment\n"
      "3\n"
      "\n"
      "0 1\n"
      "# another\n"
      "1 2 2.5\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).capacity, 1.0);
  EXPECT_DOUBLE_EQ(g.edge(1).capacity, 2.5);
}

TEST(Io, DotOutputContainsEdges) {
  const Graph g = make_complete(3);
  std::ostringstream os;
  write_dot(g, os);
  EXPECT_NE(os.str().find("0 -- 1"), std::string::npos);
  EXPECT_NE(os.str().find("graph G"), std::string::npos);
}

TEST(PathHash, DistinguishesPaths) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const Path a{0, 2, {e01, e12}};
  const Path b{0, 1, {e01}};
  PathHash h;
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(h(a), h(Path{0, 2, {e01, e12}}));
}

}  // namespace
}  // namespace sor
