// Runtime health layer tests: quantile-sketch bucketing and quantiles,
// the SOR_TELEMETRY kill switch over the HealthRegistry (no recording
// when disabled), merge determinism of sharded sketches across thread
// pool sizes (the PR 5 determinism contract extended to telemetry), SLO
// tracker breach side effects (registry + flight recorder), offline
// artifact SLO evaluation, and the Prometheus exposition format. The
// concurrent-interning stress runs under SOR_SANITIZE=thread like every
// other test.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "engine/replay.hpp"
#include "telemetry/memory.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/sketch.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace sor {
namespace {

struct ScopedEnable {
  explicit ScopedEnable(bool on = true) : previous(telemetry::enabled()) {
    telemetry::set_enabled(on);
  }
  ~ScopedEnable() { telemetry::set_enabled(previous); }
  bool previous;
};

/// Zeroes the process-wide health state so tests do not observe each
/// other's metrics.
void reset_health() {
  telemetry::HealthRegistry::global().reset();
  telemetry::Recorder::global().clear();
}

template <typename Fn>
auto at_pool_sizes(Fn&& fn) {
  std::vector<decltype(fn())> out;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ScopedDefaultPool scoped(workers);
    out.push_back(fn());
  }
  return out;
}

TEST(Sketch, BucketIndexIsMonotoneAndBoundsContainValues) {
  using telemetry::Sketch;
  // Zero and negatives land in the dedicated bucket 0.
  EXPECT_EQ(Sketch::bucket_index(0.0), 0u);
  EXPECT_EQ(Sketch::bucket_index(-3.5), 0u);
  EXPECT_EQ(Sketch::bucket_index(-std::numeric_limits<double>::infinity()),
            0u);

  std::size_t previous = 0;
  for (double v = 1e-8; v < 1e6; v *= 1.37) {
    const std::size_t index = Sketch::bucket_index(v);
    EXPECT_GE(index, previous);  // monotone in the value
    EXPECT_GT(index, 0u);
    EXPECT_LT(index, Sketch::kNumBuckets);
    // The representative is the bucket's lower bound: <= v, and within
    // one sub-bucket's relative error (1/16 per octave).
    const double lo = Sketch::bucket_lower_bound(index);
    EXPECT_LE(lo, v);
    EXPECT_GE(lo, v / (1.0 + 1.0 / 8.0));
    previous = index;
  }
  // Out-of-range magnitudes clamp instead of indexing out of bounds.
  EXPECT_EQ(Sketch::bucket_index(1e300), Sketch::kNumBuckets - 1);
  EXPECT_GT(Sketch::bucket_index(1e-300), 0u);
  EXPECT_LT(Sketch::bucket_index(1e-300), Sketch::kNumBuckets);
}

TEST(Sketch, QuantilesTrackNearestRankWithinBucketError) {
  const ScopedEnable enable;
  telemetry::Sketch sketch;
  // 1..1000 in a scrambled (deterministic) order.
  for (int i = 0; i < 1000; ++i) {
    sketch.observe(static_cast<double>((i * 617) % 1000 + 1));
  }
  const telemetry::SketchSnapshot snap = sketch.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);  // exact, not a bucket bound
  // Bucket representatives are lower bounds within 1/16 relative error.
  const double p50 = telemetry::sketch_quantile(snap, 0.50);
  const double p99 = telemetry::sketch_quantile(snap, 0.99);
  EXPECT_LE(p50, 500.5);
  EXPECT_GE(p50, 500.5 / (1.0 + 1.0 / 8.0));
  EXPECT_LE(p99, 991.0);
  EXPECT_GE(p99, 991.0 / (1.0 + 1.0 / 8.0));
  // summary() agrees with the free quantile function.
  const StatsSummary summary = sketch.summary();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(summary.p50),
            std::bit_cast<std::uint64_t>(p50));
}

TEST(Sketch, KillSwitchMakesObserveANoop) {
  const ScopedEnable disable(false);
  telemetry::Sketch sketch;
  sketch.observe(1.0);
  sketch.observe(42.0);
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.snapshot().buckets.size(), 0u);
}

// Satellite 2: under SOR_TELEMETRY=off nothing in the health registry
// records — rates, gauges, sketches, epoch rolls, and breach recording
// are all no-ops (and the hot path takes no locks: the guard is the
// same relaxed atomic-bool load the telemetry registry uses).
TEST(HealthRegistry, KillSwitchDisablesAllRecording) {
  reset_health();
  const ScopedEnable disable(false);
  auto& registry = telemetry::HealthRegistry::global();
  registry.rate("test/off_rate").add(7);
  registry.window_gauge("test/off_gauge").set(3.5);
  registry.sketch("test/off_sketch").observe(1.0);
  registry.roll_epoch(0);
  registry.record_breach({"max_congestion", 0, 2.0, 1.0});

  EXPECT_EQ(registry.rate("test/off_rate").total(), 0u);
  EXPECT_DOUBLE_EQ(registry.window_gauge("test/off_gauge").value(), 0.0);
  EXPECT_EQ(registry.sketch("test/off_sketch").count(), 0u);
  EXPECT_EQ(registry.epochs_rolled(), 0u);
  EXPECT_TRUE(registry.breaches().empty());
  EXPECT_EQ(registry.health_status(), 0);
}

TEST(HealthRegistry, RollEpochClosesRateDeltasAndGaugeValues) {
  reset_health();
  const ScopedEnable enable;
  auto& registry = telemetry::HealthRegistry::global();
  auto& rate = registry.rate("test/window_rate");
  auto& gauge = registry.window_gauge("test/window_gauge");

  rate.add(3);
  gauge.set(1.5);
  registry.roll_epoch(0);
  rate.add(5);
  gauge.set(2.5);
  registry.roll_epoch(1);

  for (const auto& [name, window] : registry.rate_windows()) {
    if (name != "test/window_rate") continue;
    ASSERT_EQ(window.size(), 2u);
    EXPECT_EQ(window[0].epoch, 0u);
    EXPECT_DOUBLE_EQ(window[0].value, 3.0);  // delta, not running total
    EXPECT_EQ(window[1].epoch, 1u);
    EXPECT_DOUBLE_EQ(window[1].value, 5.0);
  }
  for (const auto& [name, window] : registry.gauge_windows()) {
    if (name != "test/window_gauge") continue;
    ASSERT_EQ(window.size(), 2u);
    EXPECT_DOUBLE_EQ(window[0].value, 1.5);
    EXPECT_DOUBLE_EQ(window[1].value, 2.5);
  }
  EXPECT_EQ(registry.epochs_rolled(), 2u);
}

// Satellite 3: a sharded observation stream merges to byte-identical
// quantiles no matter how many workers observed the shards. The shard
// structure is fixed (like parallel_reduce's chunking), only the pool
// size varies.
TEST(Sketch, MergeIsBitIdenticalAcrossThreadPoolSizes) {
  const ScopedEnable enable;
  constexpr std::size_t kShards = 16;
  constexpr std::size_t kPerShard = 500;

  struct Digest {
    std::uint64_t count;
    std::uint64_t p50, p95, p99, max;
  };
  const auto run = [&]() -> Digest {
    std::vector<telemetry::Sketch> sketches(kShards);
    parallel_for(kShards, [&](std::size_t s) {
      for (std::size_t i = 0; i < kPerShard; ++i) {
        const std::size_t k = s * kPerShard + i;
        // Latency-like spread over ~6 orders of magnitude.
        sketches[s].observe(1e-6 *
                            std::pow(10.0, static_cast<double>(k % 6001) /
                                               1000.0));
      }
    });
    std::vector<telemetry::SketchSnapshot> parts;
    parts.reserve(kShards);
    for (const telemetry::Sketch& s : sketches) {
      parts.push_back(s.snapshot());
    }
    const telemetry::SketchSnapshot merged =
        telemetry::merge_sketch_snapshots(parts);
    return {merged.count,
            std::bit_cast<std::uint64_t>(telemetry::sketch_quantile(merged, 0.50)),
            std::bit_cast<std::uint64_t>(telemetry::sketch_quantile(merged, 0.95)),
            std::bit_cast<std::uint64_t>(telemetry::sketch_quantile(merged, 0.99)),
            std::bit_cast<std::uint64_t>(merged.max)};
  };

  const auto digests = at_pool_sizes(run);
  ASSERT_EQ(digests.size(), 3u);
  for (std::size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i].count, digests[0].count);
    EXPECT_EQ(digests[i].p50, digests[0].p50);
    EXPECT_EQ(digests[i].p95, digests[0].p95);
    EXPECT_EQ(digests[i].p99, digests[0].p99);
    EXPECT_EQ(digests[i].max, digests[0].max);
  }
  EXPECT_EQ(digests[0].count, kShards * kPerShard);
}

// A single sketch observed concurrently summarizes identically to the
// same observations applied sequentially: bucket counts are commutative
// atomic adds and min/max are commutative CAS-combines (sum is the
// documented exception and is not compared).
TEST(Sketch, ConcurrentObservationMatchesSequential) {
  const ScopedEnable enable;
  constexpr std::size_t kN = 20000;
  const auto value = [](std::size_t i) {
    return 1e-3 * static_cast<double>(i % 997 + 1);
  };

  telemetry::Sketch sequential;
  for (std::size_t i = 0; i < kN; ++i) sequential.observe(value(i));

  telemetry::Sketch concurrent;
  parallel_for(kN, [&](std::size_t i) { concurrent.observe(value(i)); });

  const auto a = sequential.snapshot();
  const auto b = concurrent.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.min),
            std::bit_cast<std::uint64_t>(b.min));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.max),
            std::bit_cast<std::uint64_t>(b.max));
}

// Concurrent interning + recording from many threads; run under
// SOR_SANITIZE=thread this is the registry's data-race check
// (satellite 5).
TEST(HealthRegistry, ConcurrentInterningAndRecordingIsSafe) {
  reset_health();
  const ScopedEnable enable;
  constexpr std::size_t kN = 4000;
  parallel_for(kN, [&](std::size_t i) {
    auto& registry = telemetry::HealthRegistry::global();
    // A handful of names, interned repeatedly from every thread.
    const std::string name = "stress/metric" + std::to_string(i % 7);
    registry.rate(name).add();
    registry.window_gauge(name).set(static_cast<double>(i));
    registry.sketch(name).observe(static_cast<double>(i % 100 + 1));
  });
  auto& registry = telemetry::HealthRegistry::global();
  std::uint64_t total = 0;
  registry.roll_epoch(0);
  for (const auto& [name, window] : registry.rate_windows()) {
    if (name.rfind("stress/", 0) != 0) continue;
    for (const auto& point : window) {
      total += static_cast<std::uint64_t>(point.value);
    }
  }
  EXPECT_EQ(total, kN);
  reset_health();
}

TEST(Slo, ParseAcceptsKnownKeysAndRejectsUnknown) {
  const telemetry::SloConfig config = telemetry::parse_slo_config(
      R"({"max_congestion": 1.5, "solve_p99_ms": 250, "min_cache_hit_rate": 0.8})");
  EXPECT_DOUBLE_EQ(config.max_congestion, 1.5);
  EXPECT_DOUBLE_EQ(config.solve_p99_ms, 250.0);
  EXPECT_DOUBLE_EQ(config.min_cache_hit_rate, 0.8);
  EXPECT_TRUE(config.any_set());
  EXPECT_FALSE(telemetry::parse_slo_config("{}").any_set());
  EXPECT_THROW(telemetry::parse_slo_config(R"({"max_congeston": 1.5})"),
               CheckError);
}

TEST(Slo, ParseAcceptsQualityKeys) {
  const telemetry::SloConfig config = telemetry::parse_slo_config(
      R"({"max_regret": 1.2, "max_predictor_mape": 0.3})");
  EXPECT_DOUBLE_EQ(config.max_regret, 1.2);
  EXPECT_DOUBLE_EQ(config.max_predictor_mape, 0.3);
  EXPECT_TRUE(config.any_set());
}

TEST(Slo, QualityBreachesUseSentinelSkips) {
  reset_health();
  const ScopedEnable enable;
  telemetry::SloConfig config;
  config.max_regret = 1.2;
  config.max_predictor_mape = 0.25;
  telemetry::SloTracker tracker(config);
  ASSERT_TRUE(tracker.active());

  // Negative sentinels mean "not measured this epoch" (no shadow sample /
  // bootstrap) and must not breach.
  EXPECT_TRUE(tracker.check_epoch(0, 0.5, 1.0, -1.0, -1.0, -1.0).empty());
  // In-budget figures hold.
  EXPECT_TRUE(tracker.check_epoch(1, 0.5, 1.0, -1.0, 1.1, 0.2).empty());
  // Both quality budgets blown.
  const auto breaches = tracker.check_epoch(2, 0.5, 1.0, -1.0, 1.5, 0.4);
  ASSERT_EQ(breaches.size(), 2u);
  EXPECT_EQ(breaches[0].slo, "max_regret");
  EXPECT_DOUBLE_EQ(breaches[0].value, 1.5);
  EXPECT_EQ(breaches[1].slo, "max_predictor_mape");
  reset_health();
}

TEST(Slo, EvaluateArtifactChecksQualityBlock) {
  using telemetry::JsonValue;
  const JsonValue artifact = JsonValue::parse(R"({
    "experiment": "E16",
    "health": {"breaches": [], "sketches": {}, "status": 0},
    "quality": {
      "regret": {"epochs": [0, 2], "max": 1.4, "p95": 1.3},
      "predictor": {"scored_epochs": 3, "mape_max": 0.5, "mape_mean": 0.2}
    }
  })");
  telemetry::SloConfig config;
  config.max_regret = 1.2;
  config.max_predictor_mape = 0.4;
  const telemetry::ArtifactSloReport report =
      telemetry::evaluate_artifact_slo(artifact, config);
  ASSERT_EQ(report.evaluated.size(), 2u);
  EXPECT_EQ(report.evaluated[0].slo, "max_regret");
  EXPECT_DOUBLE_EQ(report.evaluated[0].value, 1.4);
  EXPECT_EQ(report.status, 1);

  // No samples recorded: the quality budgets are vacuously met.
  const JsonValue empty_quality = JsonValue::parse(R"({
    "experiment": "E16",
    "health": {"breaches": [], "sketches": {}, "status": 0},
    "quality": {
      "regret": {"epochs": [], "max": 0, "p95": 0},
      "predictor": {"scored_epochs": 0, "mape_max": 0, "mape_mean": 0}
    }
  })");
  EXPECT_EQ(telemetry::evaluate_artifact_slo(empty_quality, config).status, 0);
}

TEST(Slo, TrackerRecordsBreachesToRegistryAndFlightRecorder) {
  reset_health();
  const ScopedEnable enable;
  telemetry::SloConfig config;
  config.max_congestion = 1.0;
  config.solve_p99_ms = 10.0;
  config.min_cache_hit_rate = 0.5;
  telemetry::SloTracker tracker(config);
  ASSERT_TRUE(tracker.active());

  // Healthy epoch: nothing breaches; hit rate -1 means "no traffic" and
  // skips the floor.
  EXPECT_TRUE(tracker.check_epoch(0, 0.8, 5.0, -1.0).empty());
  EXPECT_EQ(tracker.status(), 0);

  // Everything breaches at once.
  const auto breaches = tracker.check_epoch(1, 2.0, 50.0, 0.1);
  ASSERT_EQ(breaches.size(), 3u);
  EXPECT_EQ(tracker.status(), 1);
  EXPECT_EQ(tracker.total_breaches(), 3u);
  EXPECT_EQ(telemetry::HealthRegistry::global().health_status(), 1);
  EXPECT_EQ(telemetry::HealthRegistry::global().breaches().size(), 3u);

  // Each breach is also a structured flight-recorder event.
  std::size_t recorded = 0;
  for (const telemetry::RecorderEvent& event :
       telemetry::Recorder::global().snapshot()) {
    if (event.category == "slo/breach") ++recorded;
  }
  EXPECT_EQ(recorded, 3u);
  reset_health();
}

// Acceptance criterion: an engine run with an unmeetable SLO reports the
// breaches in its result, flips the health status, and the per-epoch
// reports carry the health snapshot.
TEST(Slo, EngineRunWithTightSloBreaches) {
  reset_health();
  const ScopedEnable enable;
  engine::EngineRunConfig config;
  config.source = "sp";
  config.trace.num_epochs = 3;
  config.engine.slo.max_congestion = 1e-9;
  const engine::EngineRunOutput out = engine::run_from_config(config);

  EXPECT_EQ(out.result.health_status, 1);
  EXPECT_FALSE(out.result.breaches.empty());
  ASSERT_EQ(out.result.epochs.size(), 3u);
  for (const engine::EpochReport& report : out.result.epochs) {
    EXPECT_GE(report.health.breaches, 1u);
    EXPECT_GT(report.health.congestion_watermark, 0.0);
    EXPECT_GE(report.health.solve_p99_ms, report.health.solve_p50_ms);
  }
  // The watermark is the running max of realized congestion.
  EXPECT_DOUBLE_EQ(out.result.epochs.back().health.congestion_watermark,
                   out.result.congestion_summary.max);
  std::size_t recorded = 0;
  for (const telemetry::RecorderEvent& event :
       telemetry::Recorder::global().snapshot()) {
    if (event.category == "slo/breach") ++recorded;
  }
  EXPECT_GE(recorded, 3u);  // at least one per epoch
  reset_health();
}

// The same run without an SLO config is healthy and records nothing.
TEST(Slo, EngineRunWithoutSloIsHealthy) {
  reset_health();
  const ScopedEnable enable;
  engine::EngineRunConfig config;
  config.source = "sp";
  config.trace.num_epochs = 2;
  const engine::EngineRunOutput out = engine::run_from_config(config);
  EXPECT_EQ(out.result.health_status, 0);
  EXPECT_TRUE(out.result.breaches.empty());
  reset_health();
}

TEST(Slo, EvaluateArtifactReportsRecordedAndReEvaluatedBreaches) {
  using telemetry::JsonValue;
  const JsonValue artifact = JsonValue::parse(R"({
    "experiment": "E16",
    "health": {
      "enabled": true,
      "breaches": [
        {"slo": "max_congestion", "epoch": 2, "value": 1.9, "budget": 1.0}
      ],
      "sketches": {
        "engine/solve_seconds":
          {"count": 8, "sum": 0.4, "min": 0.01, "max": 0.2,
           "p50": 0.04, "p95": 0.1, "p99": 0.125}
      },
      "watermarks": {"engine/congestion": 1.9},
      "status": 1
    },
    "cache": {"hits": 1, "disk_hits": 0, "misses": 9}
  })");

  telemetry::SloConfig config;
  config.solve_p99_ms = 100.0;       // p99 is 125 ms -> breach
  config.max_congestion = 2.5;       // watermark 1.9 -> holds
  config.min_cache_hit_rate = 0.5;   // 0.1 -> breach
  const telemetry::ArtifactSloReport report =
      telemetry::evaluate_artifact_slo(artifact, config);
  EXPECT_EQ(report.recorded.size(), 1u);
  ASSERT_EQ(report.evaluated.size(), 2u);
  EXPECT_EQ(report.status, 1);

  // An artifact with no recorded breaches against a permissive config.
  const telemetry::ArtifactSloReport ok = telemetry::evaluate_artifact_slo(
      JsonValue::parse(R"({"experiment": "E16", "health": {"breaches": [],
                           "sketches": {}, "status": 0}})"),
      telemetry::SloConfig{});
  EXPECT_EQ(ok.status, 0);
}

TEST(Exporters, PrometheusTextExposesCountersAndSketchSummaries) {
  reset_health();
  const ScopedEnable enable;
  SOR_COUNTER("promtest/events").add(3);
  auto& sketch = telemetry::HealthRegistry::global().sketch("promtest/lat");
  for (int i = 1; i <= 100; ++i) sketch.observe(static_cast<double>(i));
  telemetry::HealthRegistry::global().rate("promtest/rate").add(2);
  telemetry::HealthRegistry::global().roll_epoch(0);

  const std::string text = telemetry::prometheus_text();
  EXPECT_NE(text.find("sor_promtest_events 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sor_promtest_lat summary"), std::string::npos);
  EXPECT_NE(text.find("sor_promtest_lat{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sor_promtest_lat_count 100"), std::string::npos);
  EXPECT_NE(text.find("sor_promtest_rate_total"), std::string::npos);
  reset_health();
}

// Satellite: ring overflow is not silent — the evictions show up in the
// health block's recorder figures (and in the recorder/dropped counter).
TEST(Exporters, RecorderOverflowSurfacesInHealthBlock) {
  reset_health();
  const ScopedEnable enable;
  auto& recorder = telemetry::Recorder::global();
  const std::size_t saved = recorder.capacity();
  recorder.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record("overflow/test", {{"i", i}});
  }
  const telemetry::JsonValue doc = telemetry::health_to_json();
  EXPECT_EQ(doc.at("recorder").at("recorded").as_number(), 10.0);
  EXPECT_EQ(doc.at("recorder").at("dropped").as_number(), 6.0);
  recorder.set_capacity(saved);
  recorder.clear();
  reset_health();
}

TEST(Exporters, HealthJsonCarriesSketchesWatermarksAndStatus) {
  reset_health();
  const ScopedEnable enable;
  auto& registry = telemetry::HealthRegistry::global();
  registry.sketch("jsontest/lat").observe(0.25);
  registry.window_gauge("jsontest/gauge").set(1.25);
  registry.rate("jsontest/rate").add(4);
  registry.roll_epoch(0);
  registry.record_breach({"max_congestion", 0, 2.0, 1.0});

  const telemetry::JsonValue doc = telemetry::health_to_json();
  EXPECT_TRUE(doc.at("enabled").as_bool());
  EXPECT_EQ(doc.at("epochs_rolled").as_number(), 1.0);
  const telemetry::JsonValue& sketch =
      doc.at("sketches").at("jsontest/lat");
  EXPECT_EQ(sketch.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.at("max").as_number(), 0.25);
  EXPECT_DOUBLE_EQ(
      doc.at("watermarks").at("jsontest/lat").as_number(), 0.25);
  EXPECT_EQ(doc.at("breaches").size(), 1u);
  EXPECT_EQ(doc.at("status").as_number(), 1.0);

  const telemetry::JsonValue line = telemetry::epoch_health_json(0);
  EXPECT_EQ(line.at("epoch").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(
      line.at("gauges").at("jsontest/gauge").as_number(), 1.25);
  EXPECT_DOUBLE_EQ(line.at("rates").at("jsontest/rate").as_number(), 4.0);
  reset_health();
}

// Satellite: the exposition format reserves backslash, double-quote, and
// newline inside label values, and backslash/newline inside HELP text.
// Telemetry keys are free-form, so hostile names must come out escaped.
TEST(Exporters, PrometheusEscapesLabelValuesAndHelpStrings) {
  EXPECT_EQ(telemetry::prometheus_escape_label("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
  EXPECT_EQ(telemetry::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(telemetry::prometheus_escape_help("a\\b\"c\nd"),
            "a\\\\b\"c\\nd");  // quotes are legal in HELP text

  reset_health();
  const ScopedEnable enable;
  // A hostile metric key: sanitized in the metric name, escaped in HELP.
  SOR_COUNTER("promesc/ev\"il\\name").add(1);
  // A hostile subsystem name flows into a label VALUE, not a name.
  telemetry::MemoryAccountant::global()
      .channel("promesc\"sub\\sys\nline")
      .charge(64);
  const std::string text = telemetry::prometheus_text();
  EXPECT_NE(text.find("# HELP sor_promesc_ev_il_name run counter for "
                      "telemetry key promesc/ev\"il\\\\name"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "sor_memory_live_bytes{subsystem=\"promesc\\\"sub\\\\sys\\nline\"} "
          "64"),
      std::string::npos);
  // The raw newline in the subsystem name must NOT survive into the
  // exposition (it would split the sample line in two).
  EXPECT_EQ(text.find("promesc\"sub"), std::string::npos);
  telemetry::MemoryAccountant::global().reset();
  reset_health();
}

TEST(Exporters, PrometheusExposesMemoryFigures) {
  reset_health();
  const ScopedEnable enable;
  telemetry::MemoryAccountant::global().channel("promem").charge(1024);
  const std::string text = telemetry::prometheus_text();
  EXPECT_NE(text.find("sor_memory_rss_bytes{kind=\"current\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sor_memory_rss_bytes{kind=\"peak\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sor_memory_live_bytes{subsystem=\"promem\"} 1024"),
            std::string::npos);
  EXPECT_NE(
      text.find("sor_memory_high_water_bytes{subsystem=\"promem\"} 1024"),
      std::string::npos);
  telemetry::MemoryAccountant::global().reset();
  reset_health();
}

// Satellite: sketch edge cases — empty merges, non-positive and denormal
// observations, and single-observation quantiles (the domain contract
// documented in sketch.hpp).
TEST(Sketch, MergingEmptySnapshotsIsIdentity) {
  const telemetry::SketchSnapshot empty;
  const std::vector<telemetry::SketchSnapshot> empties(3);
  const telemetry::SketchSnapshot merged_empty =
      telemetry::merge_sketch_snapshots(empties);
  EXPECT_EQ(merged_empty.count, 0u);
  EXPECT_TRUE(merged_empty.buckets.empty());
  EXPECT_DOUBLE_EQ(telemetry::sketch_quantile(merged_empty, 0.99), 0.0);

  const ScopedEnable enable;
  telemetry::Sketch sketch;
  sketch.observe(2.0);
  sketch.observe(8.0);
  const telemetry::SketchSnapshot base = sketch.snapshot();
  const std::vector<telemetry::SketchSnapshot> mixed = {empty, base, empty};
  const telemetry::SketchSnapshot merged =
      telemetry::merge_sketch_snapshots(mixed);
  EXPECT_EQ(merged.count, base.count);
  EXPECT_EQ(merged.buckets, base.buckets);
  EXPECT_DOUBLE_EQ(merged.min, base.min);
  EXPECT_DOUBLE_EQ(merged.max, base.max);
  EXPECT_DOUBLE_EQ(merged.sum, base.sum);
}

TEST(Sketch, NonPositiveAndDenormalObservations) {
  const ScopedEnable enable;
  telemetry::Sketch sketch;
  sketch.observe(0.0);
  sketch.observe(-7.5);
  const telemetry::SketchSnapshot nonpositive = sketch.snapshot();
  ASSERT_EQ(nonpositive.buckets.size(), 1u);
  EXPECT_EQ(nonpositive.buckets[0].first, 0u);  // the zero bucket
  EXPECT_EQ(nonpositive.buckets[0].second, 2u);
  EXPECT_DOUBLE_EQ(telemetry::sketch_quantile(nonpositive, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(nonpositive.min, -7.5);  // min/max stay exact

  // Positive subnormals underflow into the first LOG bucket, not the
  // zero bucket: they are real positive observations.
  telemetry::Sketch tiny;
  tiny.observe(std::numeric_limits<double>::denorm_min());
  const telemetry::SketchSnapshot denormal = tiny.snapshot();
  ASSERT_EQ(denormal.buckets.size(), 1u);
  EXPECT_EQ(denormal.buckets[0].first, 1u);
  EXPECT_DOUBLE_EQ(telemetry::sketch_quantile(denormal, 0.5),
                   std::ldexp(1.0, telemetry::Sketch::kMinExponent));
}

TEST(Sketch, SingleObservationReportsItsBucketAtEveryQuantile) {
  const ScopedEnable enable;
  telemetry::Sketch sketch;
  sketch.observe(3.0);
  const telemetry::SketchSnapshot snap = sketch.snapshot();
  const double expected = telemetry::Sketch::bucket_lower_bound(
      telemetry::Sketch::bucket_index(3.0));
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(telemetry::sketch_quantile(snap, q), expected);
  }
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  EXPECT_DOUBLE_EQ(snap.min, 3.0);
}

// Memory attribution: live/high-water bookkeeping, the ScopedBytes kill
// switch latch, and the JSON block's checker invariants.
TEST(Memory, ChannelTracksLiveAndHighWater) {
  const ScopedEnable enable;
  auto& accountant = telemetry::MemoryAccountant::global();
  accountant.reset();
  auto& channel = accountant.channel("memtest");
  channel.charge(100);
  channel.charge(50);
  EXPECT_EQ(channel.live_bytes(), 150u);
  EXPECT_EQ(channel.high_water_bytes(), 150u);
  channel.release(120);
  EXPECT_EQ(channel.live_bytes(), 30u);
  EXPECT_EQ(channel.high_water_bytes(), 150u);  // the mark stays
  channel.charge(40);
  EXPECT_EQ(channel.high_water_bytes(), 150u);  // 70 live < old peak
  accountant.reset();
}

TEST(Memory, ScopedBytesChargesForTheScopeOnly) {
  const ScopedEnable enable;
  auto& accountant = telemetry::MemoryAccountant::global();
  accountant.reset();
  {
    SOR_SCOPED_BYTES("memtest", 4096);
    EXPECT_EQ(accountant.channel("memtest").live_bytes(), 4096u);
  }
  EXPECT_EQ(accountant.channel("memtest").live_bytes(), 0u);
  EXPECT_EQ(accountant.channel("memtest").high_water_bytes(), 4096u);
  accountant.reset();
}

TEST(Memory, KillSwitchMakesScopedBytesANoop) {
  const ScopedEnable disable(false);
  auto& accountant = telemetry::MemoryAccountant::global();
  accountant.reset();
  {
    SOR_SCOPED_BYTES("memtest", 4096);
    EXPECT_EQ(accountant.channel("memtest").live_bytes(), 0u);
  }
  EXPECT_EQ(accountant.channel("memtest").high_water_bytes(), 0u);
}

TEST(Memory, UsageAndJsonHoldCheckerInvariants) {
  const telemetry::MemoryUsage usage = telemetry::sample_memory_usage();
  EXPECT_GE(usage.peak_rss_bytes, usage.current_rss_bytes);
#ifdef __linux__
  EXPECT_GT(usage.current_rss_bytes, 0u);  // /proc/self/status exists
#endif

  const ScopedEnable enable;
  auto& accountant = telemetry::MemoryAccountant::global();
  accountant.reset();
  accountant.channel("memjson").charge(256);
  accountant.channel("memjson").release(56);
  const telemetry::JsonValue block = telemetry::memory_to_json();
  EXPECT_GE(block.at("peak_rss_bytes").as_number(),
            block.at("current_rss_bytes").as_number());
  const telemetry::JsonValue& sub = block.at("subsystems").at("memjson");
  EXPECT_DOUBLE_EQ(sub.at("live_bytes").as_number(), 200.0);
  EXPECT_DOUBLE_EQ(sub.at("high_water_bytes").as_number(), 256.0);
  accountant.reset();
}

}  // namespace
}  // namespace sor
