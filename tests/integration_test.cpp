// Parameterized end-to-end property tests: for every (topology, k, seed)
// combination, the full pipeline — oblivious routing → (λ·k)-sample →
// restricted LP → integral rounding — must satisfy the paper's structural
// invariants. These are the cross-module contracts the unit suites can't
// see.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/evaluate.hpp"
#include "core/router.hpp"
#include "core/sampler.hpp"
#include "core/weak_routing.hpp"
#include "demand/generators.hpp"
#include "flow/mcf.hpp"
#include "graph/generators.hpp"
#include "oblivious/electrical.hpp"
#include "oblivious/hop_bounded_trees.hpp"
#include "oblivious/ksp.hpp"
#include "oblivious/racke_routing.hpp"
#include "oblivious/shortest_path.hpp"

namespace sor {
namespace {

struct PipelineCase {
  std::string topology;
  std::size_t k;
  std::uint64_t seed;
};

void PrintTo(const PipelineCase& c, std::ostream* os) {
  *os << c.topology << "/k" << c.k << "/s" << c.seed;
}

Graph build_topology(const std::string& name) {
  if (name == "grid") return make_grid(5, 5);
  if (name == "torus") return make_torus(4, 5);
  if (name == "hypercube") return make_hypercube(4);
  if (name == "expander") return make_random_regular(24, 4, 3);
  if (name == "fattree") return make_fat_tree(4);
  if (name == "abilene") return make_abilene().graph;
  throw CheckError("unknown topology " + name);
}

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineTest, EndToEndInvariants) {
  const PipelineCase& param = GetParam();
  const Graph g = build_topology(param.topology);

  RaeckeOptions racke;
  racke.seed = param.seed;
  const RaeckeRouting routing(g, racke);

  Rng demand_rng(param.seed + 1);
  const Demand demand = random_permutation_demand(g, demand_rng);
  ASSERT_FALSE(demand.empty());

  SampleOptions sample;
  sample.k = param.k;
  const PathSystem system =
      sample_path_system_for_demand(routing, demand, sample, param.seed + 2);

  // --- Sampling invariants -------------------------------------------
  EXPECT_EQ(system.num_pairs(), demand.support_size());
  for (const VertexPair& pair : system.pairs()) {
    const auto paths = system.canonical_paths(pair.a, pair.b);
    EXPECT_EQ(paths.size(), param.k);
    for (const Path& p : paths) {
      EXPECT_TRUE(is_simple_path(g, p));
      EXPECT_EQ(p.src, pair.a);
      EXPECT_EQ(p.dst, pair.b);
    }
  }

  // --- Fractional routing invariants ---------------------------------
  const SemiObliviousRouter router(g, system);
  const FractionalRoute frac = router.route_fractional(demand);
  EXPECT_GT(frac.congestion, 0.0);
  EXPECT_LE(frac.lower_bound, frac.congestion * 1.06 + 1e-6);

  // Weights cover each commodity's demand exactly.
  const std::vector<Commodity> commodities = demand.commodities();
  ASSERT_EQ(frac.weights.size(), commodities.size());
  for (std::size_t j = 0; j < commodities.size(); ++j) {
    double total = 0;
    for (double w : frac.weights[j]) {
      EXPECT_GE(w, -1e-9);
      total += w;
    }
    EXPECT_NEAR(total, commodities[j].amount, 1e-5);
  }

  // Load matches the weights' load (consistency of bookkeeping).
  EdgeLoad recomputed = zero_load(g);
  for (std::size_t j = 0; j < commodities.size(); ++j) {
    const auto& cands = frac.problem.commodities[j].candidates;
    for (std::size_t p = 0; p < cands.size(); ++p) {
      if (frac.weights[j][p] > 0) {
        add_path_load(cands[p], frac.weights[j][p], recomputed);
      }
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NEAR(recomputed[e], frac.load[e], 1e-6);
  }

  // --- Competitiveness sanity -----------------------------------------
  const McfResult opt = min_congestion_routing(g, commodities);
  // Semi-oblivious can't beat OPT (modulo the MCF ε slack)...
  EXPECT_GE(frac.congestion, opt.lower_bound * 0.9);
  // ...and with k >= 2 samples from Räcke it must be within a generous
  // polylog factor on these small graphs.
  if (param.k >= 2) {
    const double logn = std::log2(static_cast<double>(g.num_vertices()));
    EXPECT_LE(frac.congestion, opt.congestion * (4 * logn + 8));
  }

  // --- Integral rounding invariants -----------------------------------
  Rng round_rng(param.seed + 3);
  const IntegralRoute integral = router.route_integral(demand, round_rng);
  EXPECT_EQ(integral.packet_paths.size(),
            static_cast<std::size_t>(std::llround(demand.total())));
  EXPECT_GE(integral.congestion + 1e-9, frac.congestion);
  EXPECT_LE(integral.congestion,
            2 * frac.congestion +
                2 * std::log2(static_cast<double>(g.num_edges())) + 2);

  // --- Weak routing at a generous threshold keeps everything ----------
  const double threshold = 2 * frac.congestion + 1;
  const WeakRoutingResult weak =
      weak_routing_process(frac.problem, threshold);
  EXPECT_LE(weak.congestion, threshold + 1e-9);
}

std::vector<PipelineCase> pipeline_cases() {
  std::vector<PipelineCase> cases;
  for (const char* topology :
       {"grid", "torus", "hypercube", "expander", "fattree", "abilene"}) {
    for (const std::size_t k : {1u, 3u, 6u}) {
      cases.push_back({topology, k, 17 * k + 5});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, PipelineTest,
                         ::testing::ValuesIn(pipeline_cases()),
                         [](const auto& info) {
                           return info.param.topology + "_k" +
                                  std::to_string(info.param.k);
                         });

// ---------------------------------------------------------------------
// λ·k sampling across connectivity regimes.
// ---------------------------------------------------------------------

class LambdaSampleTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LambdaSampleTest, DumbbellBridgesGateTheSparsity) {
  const std::uint32_t bridges = GetParam();
  const Graph g = make_dumbbell(5, bridges);
  const ShortestPathRouting routing(g);
  SampleOptions options;
  options.k = 3;
  options.lambda_cap = 8;
  const std::vector<VertexPair> pairs{VertexPair::canonical(0, 5)};
  const PathSystem ps = sample_path_system(routing, pairs, options, 11);
  // λ(0,5) = #bridges (every 0→5 path crosses a bridge); sparsity = λ·k.
  EXPECT_EQ(ps.canonical_paths(0, 5).size(),
            static_cast<std::size_t>(std::min(bridges, 8u)) * 3);
}

INSTANTIATE_TEST_SUITE_P(BridgeCounts, LambdaSampleTest,
                         ::testing::Values(1u, 2u, 4u, 7u));

// ---------------------------------------------------------------------
// The integral-demand pipeline at scale factors (Lemma 2.7 flavor):
// arbitrary integral demands with λ·k samples.
// ---------------------------------------------------------------------

class IntegralDemandTest : public ::testing::TestWithParam<int> {};

TEST_P(IntegralDemandTest, HeavyIntegralDemandsRouteProportionally) {
  const int scale = GetParam();
  const Graph g = make_torus(4, 4);
  RaeckeOptions racke;
  racke.seed = 2;
  const RaeckeRouting routing(g, racke);
  Rng rng(3);
  Demand demand = uniform_random_pairs(g, 10, 1.0, rng);
  demand.scale(scale);

  SampleOptions sample;
  sample.k = 4;
  sample.lambda_cap = 4;
  const PathSystem ps =
      sample_path_system_for_demand(routing, demand, sample, 4);
  const SemiObliviousRouter router(g, ps);
  const FractionalRoute route = router.route_fractional(demand);

  // Scaling the demand scales the optimal congestion linearly; verify
  // homogeneity within MWU tolerance.
  Demand unit = demand;
  unit.scale(1.0 / scale);
  const FractionalRoute unit_route = router.route_fractional(unit);
  EXPECT_NEAR(route.congestion / scale, unit_route.congestion,
              0.12 * unit_route.congestion + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Scales, IntegralDemandTest,
                         ::testing::Values(2, 5, 16));

// ---------------------------------------------------------------------
// Same pipeline invariants, swept across every sampling source.
// ---------------------------------------------------------------------

class SourceTest : public ::testing::TestWithParam<std::string> {};

std::unique_ptr<ObliviousRouting> build_source(const std::string& name,
                                               const Graph& g) {
  if (name == "racke") {
    RaeckeOptions options;
    options.seed = 3;
    return std::make_unique<RaeckeRouting>(g, options);
  }
  if (name == "ksp") return std::make_unique<KspRouting>(g, 6);
  if (name == "electrical") return std::make_unique<ElectricalRouting>(g);
  if (name == "sp") return std::make_unique<ShortestPathRouting>(g);
  if (name == "hoptree") {
    return std::make_unique<HopBoundedTreeRouting>(g, 8, 0, 4);
  }
  throw CheckError("unknown source " + name);
}

TEST_P(SourceTest, SampleRouteRoundEndToEnd) {
  const Graph g = make_torus(4, 4);
  const auto source = build_source(GetParam(), g);

  Rng rng(5);
  const Demand demand = random_permutation_demand(g, rng);
  SampleOptions sample;
  sample.k = 4;
  const PathSystem ps =
      sample_path_system_for_demand(*source, demand, sample, 6);

  // Sampling contract.
  for (const VertexPair& pair : ps.pairs()) {
    for (const Path& p : ps.canonical_paths(pair.a, pair.b)) {
      ASSERT_TRUE(is_simple_path(g, p)) << GetParam();
    }
  }

  // Fractional + integral pipeline stays consistent regardless of source.
  const SemiObliviousRouter router(g, ps);
  const FractionalRoute frac = router.route_fractional(demand);
  EXPECT_GT(frac.congestion, 0.0);
  Rng round_rng(7);
  const IntegralRoute integral = router.route_integral(demand, round_rng);
  EXPECT_GE(integral.congestion + 1e-9, frac.congestion);
  EXPECT_EQ(integral.packet_paths.size(),
            static_cast<std::size_t>(demand.total()));
}

INSTANTIATE_TEST_SUITE_P(AllSources, SourceTest,
                         ::testing::Values("racke", "ksp", "electrical",
                                           "sp", "hoptree"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace sor
