// Tests for src/la (Laplacian CG) and the electrical-flow oblivious
// routing, plus the Gomory–Hu cut tree (property-tested against Dinic).

#include <gtest/gtest.h>

#include <cmath>

#include "flow/gomory_hu.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "la/cg.hpp"
#include "oblivious/electrical.hpp"
#include "util/rng.hpp"

namespace sor {
namespace {

TEST(Laplacian, OperatorMatchesDefinition) {
  // Path 0-1-2 with capacities 2 and 3: L = [[2,-2,0],[-2,5,-3],[0,-3,3]].
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const LaplacianOperator op(g);
  std::vector<double> y;
  op.apply(std::vector<double>{1.0, 0.0, 0.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  op.apply(std::vector<double>{1.0, 1.0, 1.0}, y);  // kernel: L·1 = 0
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Cg, SolvesPathGraphPotentials) {
  // Unit flow 0→2 through series resistors 1/2 and 1/3: potential drops
  // 1/2 and 1/3.
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const LaplacianOperator op(g);
  std::vector<double> b{1.0, 0.0, -1.0};
  const CgResult sol = solve_laplacian(op, b);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.x[0] - sol.x[1], 0.5, 1e-7);
  EXPECT_NEAR(sol.x[1] - sol.x[2], 1.0 / 3, 1e-7);
}

TEST(Cg, RejectsNonZeroSumRhs) {
  const Graph g = make_grid(2, 2);
  const LaplacianOperator op(g);
  std::vector<double> b{1.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(solve_laplacian(op, b), CheckError);
}

TEST(Cg, ResidualIsTiny) {
  const Graph g = make_random_regular(40, 4, 3);
  const LaplacianOperator op(g);
  std::vector<double> b(g.num_vertices(), 0.0);
  b[0] = 1;
  b[17] = -1;
  const CgResult sol = solve_laplacian(op, b);
  EXPECT_TRUE(sol.converged);
  EXPECT_LT(sol.relative_residual, 1e-7);
}

TEST(ElectricalFlow, ConservesAndSplitsParallelPaths) {
  // Diamond: two symmetric 2-hop routes → half a unit each.
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const std::vector<double> f = electrical_flow(g, 0, 3);
  EXPECT_NEAR(std::abs(f[e0]), 0.5, 1e-6);
  EXPECT_NEAR(std::abs(f[e1]), 0.5, 1e-6);
  // Conservation at interior vertex 1: in == out.
  // f[e0] flows 0→1; edge (1,3) flows out.
  double net = 0;
  for (const HalfEdge& h : g.neighbors(1)) {
    const Edge& e = g.edge(h.id);
    net += (e.u == 1) ? f[h.id] : -f[h.id];
  }
  EXPECT_NEAR(net, 0.0, 1e-6);
}

TEST(ElectricalFlow, SeriesCarriesFullUnit) {
  Graph g(3);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(1, 2, 5.0);
  const std::vector<double> f = electrical_flow(g, 0, 2);
  EXPECT_NEAR(f[e0], 1.0, 1e-6);
  EXPECT_NEAR(f[e1], 1.0, 1e-6);
}

TEST(ElectricalRouting, SamplesValidPaths) {
  const Graph g = make_torus(4, 4);
  const ElectricalRouting routing(g);
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    Vertex s = 0, t = 0;
    while (s == t) {
      s = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
      t = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
    }
    const Path p = routing.sample_path(s, t, rng);
    EXPECT_TRUE(is_simple_path(g, p));
    EXPECT_EQ(p.src, s);
    EXPECT_EQ(p.dst, t);
  }
}

TEST(ElectricalRouting, SplitsAcrossDiamond) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const ElectricalRouting routing(g);
  Rng rng(6);
  int via1 = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const Path p = routing.sample_path(0, 3, rng);
    ASSERT_EQ(p.hops(), 2u);
    if (path_vertices(g, p)[1] == 1) ++via1;
  }
  EXPECT_NEAR(via1 / static_cast<double>(trials), 0.5, 0.05);
}

TEST(ElectricalRouting, ReverseOrientationWorks) {
  const Graph g = make_grid(3, 3);
  const ElectricalRouting routing(g);
  Rng rng(7);
  const Path forward = routing.sample_path(0, 8, rng);
  const Path backward = routing.sample_path(8, 0, rng);
  EXPECT_EQ(forward.src, 0u);
  EXPECT_EQ(backward.src, 8u);
  EXPECT_TRUE(is_simple_path(g, backward));
}

TEST(GomoryHu, MatchesDinicOnAllPairs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = make_erdos_renyi(18, 0.3, seed);
    const GomoryHuTree tree(g);
    for (Vertex s = 0; s < g.num_vertices(); ++s) {
      for (Vertex t = s + 1; t < g.num_vertices(); ++t) {
        EXPECT_NEAR(tree.min_cut(s, t), min_cut_value(g, s, t), 1e-6)
            << "pair " << s << "," << t << " seed " << seed;
      }
    }
  }
}

TEST(GomoryHu, WeightedGraph) {
  Graph g(4);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 7.0);
  g.add_edge(0, 3, 1.0);
  const GomoryHuTree tree(g);
  for (Vertex s = 0; s < 4; ++s) {
    for (Vertex t = s + 1; t < 4; ++t) {
      EXPECT_NEAR(tree.min_cut(s, t), min_cut_value(g, s, t), 1e-9);
    }
  }
}

TEST(GomoryHu, HypercubeUniformConnectivity) {
  const Graph g = make_hypercube(4);
  const GomoryHuTree tree(g);
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    Vertex s = 0, t = 0;
    while (s == t) {
      s = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
      t = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
    }
    EXPECT_DOUBLE_EQ(tree.min_cut(s, t), 4.0);
  }
}

TEST(GomoryHu, RejectsSamePair) {
  const Graph g = make_grid(2, 2);
  const GomoryHuTree tree(g);
  EXPECT_THROW(tree.min_cut(1, 1), CheckError);
}

}  // namespace
}  // namespace sor
