// Run-ledger tests: artifact summarization and the config digest,
// byte-identical append determinism, corruption-tolerant reads, and the
// median/MAD trend gate (clean ledgers pass, an injected 2x latency
// regression flags).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/buildinfo.hpp"
#include "telemetry/json.hpp"
#include "telemetry/ledger.hpp"
#include "util/check.hpp"

namespace sor {
namespace {

using telemetry::JsonValue;
using telemetry::LedgerProvenance;
using telemetry::LedgerReadResult;
using telemetry::LedgerRecord;
using telemetry::TrendOptions;
using telemetry::TrendReport;

/// A minimal schema-v6-shaped artifact with the blocks the summarizer
/// reads. `p99_scale` scales the solve-latency sketch's observations.
JsonValue make_artifact(double congestion, double wall_seconds) {
  JsonValue doc = JsonValue::object();
  doc.set("schema_version", static_cast<std::uint64_t>(6));
  doc.set("experiment", std::string("E99"));
  doc.set("claim", std::string("test artifact"));
  doc.set("quick_mode", true);
  doc.set("wall_seconds", wall_seconds);

  JsonValue table = JsonValue::object();
  JsonValue columns = JsonValue::array();
  columns.push(JsonValue("n"));
  columns.push(JsonValue("congestion"));
  table.set("columns", std::move(columns));
  doc.set("table", std::move(table));

  JsonValue health = JsonValue::object();
  JsonValue sketches = JsonValue::object();
  JsonValue solve = JsonValue::object();
  solve.set("count", static_cast<std::uint64_t>(4));
  solve.set("p50", 0.010);
  solve.set("p95", 0.020);
  solve.set("p99", 0.040);
  solve.set("max", 0.050);
  sketches.set("engine/solve_seconds", std::move(solve));
  JsonValue cong = JsonValue::object();
  cong.set("count", static_cast<std::uint64_t>(4));
  cong.set("p50", congestion / 2);
  cong.set("p95", congestion);
  cong.set("p99", congestion);
  cong.set("max", congestion);
  sketches.set("engine/congestion", std::move(cong));
  health.set("sketches", std::move(sketches));
  doc.set("health", std::move(health));

  JsonValue cache = JsonValue::object();
  cache.set("hits", static_cast<std::uint64_t>(3));
  cache.set("disk_hits", static_cast<std::uint64_t>(1));
  cache.set("misses", static_cast<std::uint64_t>(4));
  doc.set("cache", std::move(cache));

  JsonValue telemetry_block = JsonValue::object();
  JsonValue counters = JsonValue::object();
  counters.set("cost/simplex/ns", static_cast<std::uint64_t>(2'000'000'000));
  counters.set("cost/simplex/calls", static_cast<std::uint64_t>(7));
  telemetry_block.set("counters", std::move(counters));
  doc.set("telemetry", std::move(telemetry_block));

  doc.set("provenance", telemetry::build_info_json("v1.2.3-test"));
  JsonValue memory = JsonValue::object();
  memory.set("current_rss_bytes", static_cast<std::uint64_t>(1'000'000));
  memory.set("peak_rss_bytes", static_cast<std::uint64_t>(2'000'000));
  memory.set("subsystems", JsonValue::object());
  doc.set("memory", std::move(memory));
  return doc;
}

LedgerProvenance fixed_provenance() {
  LedgerProvenance p;
  p.git_sha = "abc123";
  p.timestamp = "2026-01-01T00:00:00Z";
  return p;
}

TEST(Ledger, SummarizeExtractsStableMetrics) {
  const JsonValue doc = make_artifact(1.5, 12.0);
  const LedgerRecord record =
      telemetry::summarize_artifact(doc, fixed_provenance());
  EXPECT_EQ(record.bench, "E99");
  EXPECT_TRUE(record.quick_mode);
  EXPECT_EQ(record.config_digest.size(), 16u);
  EXPECT_EQ(record.build, telemetry::build_fingerprint());
  EXPECT_DOUBLE_EQ(record.metrics.at("congestion_max"), 1.5);
  EXPECT_DOUBLE_EQ(record.metrics.at("solve_p99_ms"), 40.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("cache_hit_rate"), 0.5);
  EXPECT_DOUBLE_EQ(record.metrics.at("cost_simplex_seconds"), 2.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("cost_total_seconds"), 2.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("peak_rss_bytes"), 2'000'000.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("wall_seconds"), 12.0);
}

TEST(Ledger, SummarizeExtractsQualityMetricsWhenSampled) {
  JsonValue doc = make_artifact(1.5, 12.0);
  JsonValue regret = JsonValue::object();
  JsonValue epochs = JsonValue::array();
  epochs.push(static_cast<std::uint64_t>(0));
  epochs.push(static_cast<std::uint64_t>(2));
  regret.set("epochs", std::move(epochs));
  regret.set("p95", 1.08);
  JsonValue predictor = JsonValue::object();
  predictor.set("scored_epochs", static_cast<std::uint64_t>(3));
  predictor.set("mape_mean", 0.12);
  JsonValue quality = JsonValue::object();
  quality.set("regret", std::move(regret));
  quality.set("predictor", std::move(predictor));
  doc.set("quality", std::move(quality));

  const LedgerRecord record =
      telemetry::summarize_artifact(doc, fixed_provenance());
  EXPECT_DOUBLE_EQ(record.metrics.at("regret_p95"), 1.08);
  EXPECT_DOUBLE_EQ(record.metrics.at("predictor_mape"), 0.12);
}

TEST(Ledger, SummarizeSkipsQualityMetricsWithoutSamples) {
  // Observatory off (no quality block) or on with zero samples: the
  // metrics must be ABSENT, not zero — a zero would poison the trend
  // baseline for later runs that do sample.
  const JsonValue plain = make_artifact(1.5, 12.0);
  EXPECT_EQ(telemetry::summarize_artifact(plain, fixed_provenance())
                .metrics.count("regret_p95"),
            0u);

  JsonValue doc = make_artifact(1.5, 12.0);
  JsonValue regret = JsonValue::object();
  regret.set("epochs", JsonValue::array());
  regret.set("p95", 0.0);
  JsonValue predictor = JsonValue::object();
  predictor.set("scored_epochs", static_cast<std::uint64_t>(0));
  predictor.set("mape_mean", 0.0);
  JsonValue quality = JsonValue::object();
  quality.set("regret", std::move(regret));
  quality.set("predictor", std::move(predictor));
  doc.set("quality", std::move(quality));
  const LedgerRecord record =
      telemetry::summarize_artifact(doc, fixed_provenance());
  EXPECT_EQ(record.metrics.count("regret_p95"), 0u);
  EXPECT_EQ(record.metrics.count("predictor_mape"), 0u);
}

TEST(Ledger, ConfigDigestIgnoresResultsButNotConfig) {
  const JsonValue a = make_artifact(1.5, 12.0);
  const JsonValue b = make_artifact(9.9, 1.0);  // different RESULTS
  EXPECT_EQ(telemetry::artifact_config_digest(a),
            telemetry::artifact_config_digest(b));
  JsonValue c = make_artifact(1.5, 12.0);
  c.set("quick_mode", false);  // different CONFIG
  EXPECT_NE(telemetry::artifact_config_digest(a),
            telemetry::artifact_config_digest(c));
}

TEST(Ledger, RepeatedAppendsAreByteIdentical) {
  const JsonValue doc = make_artifact(1.5, 12.0);
  const LedgerRecord record =
      telemetry::summarize_artifact(doc, fixed_provenance());
  const std::string line_a = telemetry::record_to_json(record).dump(0);
  const std::string line_b = telemetry::record_to_json(record).dump(0);
  EXPECT_EQ(line_a, line_b);
  // Round trip through the parser reproduces the line exactly.
  const LedgerRecord reread =
      telemetry::record_from_json(JsonValue::parse(line_a));
  EXPECT_EQ(telemetry::record_to_json(reread).dump(0), line_a);
  EXPECT_EQ(reread.provenance.git_sha, "abc123");
  EXPECT_EQ(reread.metrics.size(), record.metrics.size());
}

TEST(Ledger, ReaderSkipsAndCountsCorruptLines) {
  const JsonValue doc = make_artifact(1.5, 12.0);
  const std::string good = telemetry::record_to_json(
      telemetry::summarize_artifact(doc, fixed_provenance())).dump(0);
  std::istringstream is(
      "this is not json\n" + good + "\n{\"bench\": 42}\n\n17\n" +
      good.substr(0, good.size() / 2) + "\n" + good + "\n");
  const LedgerReadResult result = telemetry::read_ledger(is);
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.corrupt_lines, 4u);  // blank lines do not count
  EXPECT_EQ(result.records[0].bench, "E99");
}

LedgerRecord make_record(double p99_ms, double congestion = 1.0) {
  LedgerRecord r;
  r.bench = "E99";
  r.config_digest = "0123456789abcdef";
  r.build = "fedcba9876543210";
  r.metrics["solve_p99_ms"] = p99_ms;
  r.metrics["congestion_max"] = congestion;
  return r;
}

TEST(Trend, CleanHistoryPassesAndInjectedRegressionFlags) {
  // Mild noise around 40 ms: no regression under defaults.
  std::vector<LedgerRecord> records;
  for (const double v : {40.0, 41.0, 39.5, 40.5, 40.2}) {
    records.push_back(make_record(v));
  }
  const TrendReport clean = telemetry::analyze_trend(records);
  ASSERT_TRUE(clean.usable());
  EXPECT_FALSE(clean.regressed());
  EXPECT_EQ(clean.runs, 5u);

  // A 2x latency spike must flag even under the default MAD slack.
  records.push_back(make_record(80.0));
  const TrendReport spiked = telemetry::analyze_trend(records);
  ASSERT_TRUE(spiked.usable());
  EXPECT_TRUE(spiked.regressed());
  for (const telemetry::TrendMetric& m : spiked.metrics) {
    if (m.name == "solve_p99_ms") {
      EXPECT_TRUE(m.regressed);
      EXPECT_GT(m.deviation, 0.0);
    } else {
      EXPECT_FALSE(m.regressed);
    }
  }
}

TEST(Trend, TwoCleanRunsCannotSpuriouslyFlag) {
  // With the latest record included in the window, a 2-record ledger's
  // deviation from the median equals the MAD exactly, so any
  // mad_factor >= 1 keeps the gate shut regardless of the values.
  std::vector<LedgerRecord> records = {make_record(40.0), make_record(55.0)};
  const TrendReport report = telemetry::analyze_trend(records);
  ASSERT_TRUE(report.usable());
  EXPECT_FALSE(report.regressed());

  // The deterministic injection configuration used by the fixture chain:
  // window 2, no MAD slack, 25% threshold — a 2x value flags.
  records[1] = make_record(80.0);
  TrendOptions options;
  options.window = 2;
  options.mad_factor = 0;
  options.threshold = 0.25;
  const TrendReport injected = telemetry::analyze_trend(records, options);
  ASSERT_TRUE(injected.usable());
  EXPECT_TRUE(injected.regressed());
}

TEST(Trend, CacheHitRateRegressesDownwardAndSkipsSentinel) {
  std::vector<LedgerRecord> records;
  for (int i = 0; i < 4; ++i) {
    LedgerRecord r = make_record(40.0);
    r.metrics["cache_hit_rate"] = 0.9;
    records.push_back(r);
  }
  LedgerRecord drop = make_record(40.0);
  drop.metrics["cache_hit_rate"] = 0.2;  // collapsed hit rate
  records.push_back(drop);
  TrendOptions options;
  options.mad_factor = 1.0;  // history is noiseless; MAD = 0 until last
  const TrendReport report = telemetry::analyze_trend(records, options);
  ASSERT_TRUE(report.usable());
  bool saw_hit_rate = false;
  for (const telemetry::TrendMetric& m : report.metrics) {
    if (m.name != "cache_hit_rate") continue;
    saw_hit_rate = true;
    EXPECT_FALSE(m.higher_is_worse);
    EXPECT_TRUE(m.regressed);
  }
  EXPECT_TRUE(saw_hit_rate);

  // The -1 no-traffic sentinel never participates.
  for (auto& r : records) r.metrics["cache_hit_rate"] = -1;
  const TrendReport sentinel = telemetry::analyze_trend(records, options);
  for (const telemetry::TrendMetric& m : sentinel.metrics) {
    EXPECT_NE(m.name, "cache_hit_rate");
  }
}

TEST(Trend, SingleRecordIsUsableButNeverFlags) {
  const std::vector<LedgerRecord> records = {make_record(40.0)};
  const TrendReport report = telemetry::analyze_trend(records);
  EXPECT_TRUE(report.usable());
  EXPECT_FALSE(report.regressed());
}

TEST(Trend, MixedLedgersRequireTheBenchFilter) {
  std::vector<LedgerRecord> records = {make_record(40.0)};
  LedgerRecord other = make_record(40.0);
  other.bench = "E12";
  records.push_back(other);
  const TrendReport unfiltered = telemetry::analyze_trend(records);
  EXPECT_FALSE(unfiltered.usable());
  const TrendReport filtered =
      telemetry::analyze_trend(records, TrendOptions{}, "E12");
  EXPECT_TRUE(filtered.usable());
  EXPECT_EQ(filtered.runs, 1u);
  const TrendReport missing =
      telemetry::analyze_trend(records, TrendOptions{}, "E404");
  EXPECT_FALSE(missing.usable());
}

TEST(BuildInfo, FingerprintIsStableHexAndStampedIntoJson) {
  EXPECT_EQ(telemetry::build_fingerprint(),
            telemetry::build_fingerprint());
  EXPECT_EQ(telemetry::build_fingerprint().size(), 16u);
  for (const char c : telemetry::build_fingerprint()) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
  // Known FNV-1a 64 vectors pin the hash the fingerprint is built from.
  EXPECT_EQ(telemetry::fnv1a64_hex(""), "cbf29ce484222325");
  EXPECT_EQ(telemetry::fnv1a64_hex("a"), "af63dc4c8601ec8c");

  const JsonValue block = telemetry::build_info_json("v1.2.3-test");
  EXPECT_EQ(block.at("git_describe").as_string(), "v1.2.3-test");
  EXPECT_EQ(block.at("build_fingerprint").as_string(),
            telemetry::build_fingerprint());
  EXPECT_FALSE(block.at("compiler_id").as_string().empty());
  EXPECT_FALSE(block.at("sanitize").as_string().empty());
}

}  // namespace
}  // namespace sor
