// Tests for the Section 8 lower-bound adversary: on the two-star gadget it
// must find a permutation demand forcing congestion ~matching/k out of any
// k-sparse path system while OPT stays constant.

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "core/router.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "lowerbound/adversary.hpp"
#include "oblivious/ksp.hpp"
#include "util/rng.hpp"

namespace sor {
namespace {

/// Builds the k-sparse system choosing, for every leaf pair, the paths
/// through middles picked by `chooser(l, r, i)` for i in [0, k).
PathSystem system_via_middles(
    const TwoStarGraph& ts, std::size_t k,
    const std::function<std::size_t(std::size_t, std::size_t, std::size_t)>&
        chooser) {
  PathSystem ps;
  for (std::size_t l = 0; l < ts.left_leaves.size(); ++l) {
    for (std::size_t r = 0; r < ts.right_leaves.size(); ++r) {
      for (std::size_t i = 0; i < k; ++i) {
        const Vertex middle = ts.middles[chooser(l, r, i) % ts.middles.size()];
        const std::vector<Vertex> verts{ts.left_leaves[l], ts.center_left,
                                        middle, ts.center_right,
                                        ts.right_leaves[r]};
        ps.add(path_from_vertices(ts.graph, verts));
      }
    }
  }
  return ps;
}

TEST(Adversary, PathMiddleExtraction) {
  const TwoStarGraph ts = make_two_star(3, 4);
  const std::vector<Vertex> verts{ts.left_leaves[0], ts.center_left,
                                  ts.middles[2], ts.center_right,
                                  ts.right_leaves[1]};
  const Path p = path_from_vertices(ts.graph, verts);
  EXPECT_EQ(path_middle(ts, p), ts.middles[2]);
}

TEST(Adversary, AllPairsThroughOneMiddleIsWorstCase) {
  // Degenerate 1-sparse system: everyone routes through middle 0. The
  // adversary should find a perfect matching all confined to {middle 0}.
  const TwoStarGraph ts = make_two_star(6, 6);
  const PathSystem ps = system_via_middles(
      ts, 1, [](std::size_t, std::size_t, std::size_t) { return 0; });
  const AdversaryResult r = find_adversarial_demand(ts, ps, 1);
  EXPECT_EQ(r.matching_size, 6u);
  EXPECT_EQ(r.bottleneck.size(), 1u);
  EXPECT_DOUBLE_EQ(r.forced_congestion, 6.0);
  EXPECT_DOUBLE_EQ(r.opt_congestion, 1.0);
}

TEST(Adversary, ForcedCongestionIsAchievedByTheLp) {
  // The LP over the path system cannot beat matching/k; check the actual
  // semi-oblivious congestion matches the adversary's bound.
  const TwoStarGraph ts = make_two_star(8, 8);
  // 2-sparse: pair (l, r) uses middles {l mod m, (l+1) mod m} — ignores r,
  // so for fixed l all right leaves share the same two middles.
  const PathSystem ps = system_via_middles(
      ts, 2, [&](std::size_t l, std::size_t, std::size_t i) { return l + i; });
  const AdversaryResult r = find_adversarial_demand(ts, ps, 2);
  ASSERT_GT(r.matching_size, 0u);

  const SemiObliviousRouter router(ts.graph, ps);
  const FractionalRoute route = router.route_fractional(r.demand);
  EXPECT_GE(route.congestion + 1e-6, r.forced_congestion / 2.0);
}

TEST(Adversary, DemandIsAPermutation) {
  const TwoStarGraph ts = make_two_star(5, 7);
  Rng rng(3);
  const PathSystem ps = system_via_middles(
      ts, 2, [&rng](std::size_t, std::size_t, std::size_t) {
        return static_cast<std::size_t>(rng.next_u64(100));
      });
  const AdversaryResult r = find_adversarial_demand(ts, ps, 2);
  // Each leaf appears in at most one demand pair.
  std::map<Vertex, int> uses;
  for (const Commodity& c : r.demand.commodities()) {
    EXPECT_DOUBLE_EQ(c.amount, 1.0);
    ++uses[c.src];
    ++uses[c.dst];
  }
  for (const auto& [v, count] : uses) EXPECT_EQ(count, 1);
}

TEST(Adversary, RandomSpreadingWeakensTheBound) {
  // When the k paths per pair use genuinely random middles (the paper's
  // construction!), confined matchings shrink: the adversary's forced
  // congestion should be much smaller than in the collapsed system.
  const TwoStarGraph ts = make_two_star(10, 10);
  Rng rng(5);
  const std::size_t k = 3;

  const PathSystem collapsed = system_via_middles(
      ts, k, [](std::size_t, std::size_t, std::size_t i) { return i; });
  // ^ everyone shares middles {0,1,2}.
  const PathSystem spread = system_via_middles(
      ts, k, [&rng](std::size_t, std::size_t, std::size_t) {
        return static_cast<std::size_t>(rng.next_u64(1000));
      });

  const AdversaryResult bad = find_adversarial_demand(ts, collapsed, k);
  const AdversaryResult good = find_adversarial_demand(ts, spread, k);
  EXPECT_EQ(bad.matching_size, 10u);  // all pairs confined
  EXPECT_LT(good.matching_size, bad.matching_size);
}

TEST(Adversary, SampledSystemOnTwoStarBehavesLikeTheory) {
  // End to end with a real oblivious routing (KSP over the gadget, which
  // spreads across middles): adversary bound stays near opt for k >= 2.
  const TwoStarGraph ts = make_two_star(6, 8);
  const KspRouting routing(ts.graph, 8);
  std::vector<VertexPair> pairs;
  for (Vertex l : ts.left_leaves) {
    for (Vertex r : ts.right_leaves) {
      pairs.push_back(VertexPair::canonical(l, r));
    }
  }
  SampleOptions sample;
  sample.k = 3;
  const PathSystem ps = sample_path_system(routing, pairs, sample, 7);
  const AdversaryResult r = find_adversarial_demand(ts, ps, 3);
  EXPECT_LE(r.forced_congestion, 6.0);  // matching <= 6 leaves, k = 3 → <= 2… generous
}

}  // namespace
}  // namespace sor
