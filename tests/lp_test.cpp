// Unit tests for src/lp: the dense two-phase simplex on hand-solvable LPs
// (optimal / infeasible / unbounded / degenerate) and the restricted-path
// min-congestion solvers, including exact-vs-MWU cross-validation.

#include <gtest/gtest.h>

#include "demand/generators.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "lp/path_lp.hpp"
#include "lp/simplex.hpp"
#include "oblivious/ksp.hpp"
#include "util/rng.hpp"

namespace sor {
namespace {

TEST(Simplex, SimpleMaximization) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  → as minimization of -(x+y).
  // Optimum at intersection: x = 8/5, y = 6/5, value 14/5.
  LpProblem lp;
  lp.objective = {-1, -1};
  lp.constraints.push_back({{1, 2}, ConstraintSense::kLe, 4});
  lp.constraints.push_back({{3, 1}, ConstraintSense::kLe, 6});
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, -14.0 / 5, 1e-8);
  EXPECT_NEAR(s.x[0], 8.0 / 5, 1e-8);
  EXPECT_NEAR(s.x[1], 6.0 / 5, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 3, x <= 1 → x = 1, y = 2, value 5.
  LpProblem lp;
  lp.objective = {1, 2};
  lp.constraints.push_back({{1, 1}, ConstraintSense::kEq, 3});
  lp.constraints.push_back({{1, 0}, ConstraintSense::kLe, 1});
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 5.0, 1e-8);
}

TEST(Simplex, GreaterEqualConstraint) {
  // min 2x + 3y s.t. x + y >= 4, x - y <= 2 → best at y as small as the
  // constraints allow: x + y = 4 with x <= y + 2: x = 3, y = 1 → 9; or
  // x = 4, y = 0 violates x - y <= 2... wait 4 - 0 = 4 > 2. So x - y = 2,
  // x + y = 4 → x = 3, y = 1: value 9.
  LpProblem lp;
  lp.objective = {2, 3};
  lp.constraints.push_back({{1, 1}, ConstraintSense::kGe, 4});
  lp.constraints.push_back({{1, -1}, ConstraintSense::kLe, 2});
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 9.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblem lp;
  lp.objective = {1};
  lp.constraints.push_back({{1}, ConstraintSense::kGe, 5});
  lp.constraints.push_back({{1}, ConstraintSense::kLe, 2});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x s.t. x >= 1 (x can grow forever).
  LpProblem lp;
  lp.objective = {-1};
  lp.constraints.push_back({{1}, ConstraintSense::kGe, 1});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LpProblem lp;
  lp.objective = {1};
  lp.constraints.push_back({{-1}, ConstraintSense::kLe, -3});
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-8);
}

TEST(Simplex, DegenerateInstanceTerminates) {
  // Classic degenerate LP (multiple constraints active at the origin).
  LpProblem lp;
  lp.objective = {-0.75, 150, -0.02, 6};
  lp.constraints.push_back({{0.25, -60, -0.04, 9}, ConstraintSense::kLe, 0});
  lp.constraints.push_back({{0.5, -90, -0.02, 3}, ConstraintSense::kLe, 0});
  lp.constraints.push_back({{0, 0, 1, 0}, ConstraintSense::kLe, 1});
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, -0.05, 1e-7);  // Beale's example optimum
  // Beale's example pivots through degenerate bases; the introspection
  // counters must see them, and must be bounded by the total pivot count.
  EXPECT_GT(s.iterations, 0u);
  EXPECT_GT(s.degenerate_pivots, 0u);
  EXPECT_LE(s.degenerate_pivots, s.iterations);
}

TEST(Simplex, PivotCapReturnsIterLimitNotAnInfiniteLoop) {
  // A 1-pivot budget cannot even finish phase 1 of a >= constraint; the
  // solver must report the cap distinctly (kIterLimit, never kTruncated —
  // that status is reserved for deadline/cancel hooks) with no solution.
  LpProblem lp;
  lp.objective = {2, 3};
  lp.constraints.push_back({{1, 1}, ConstraintSense::kGe, 4});
  lp.constraints.push_back({{1, -1}, ConstraintSense::kLe, 2});
  const LpSolution s = solve_lp(lp, 1);
  EXPECT_EQ(s.status, LpStatus::kIterLimit);
  EXPECT_TRUE(s.x.empty());
  EXPECT_LE(s.iterations, 2u);  // at most one pivot per phase attempted
}

TEST(Simplex, ZeroMaxIterationsMeansAutoBoundNotZeroPivots) {
  // max_iterations = 0 is the documented "pick a safe cap" sentinel; a
  // plain LP must still solve to optimality under it.
  LpProblem lp;
  lp.objective = {-1, -1};
  lp.constraints.push_back({{1, 2}, ConstraintSense::kLe, 4});
  lp.constraints.push_back({{3, 1}, ConstraintSense::kLe, 6});
  const LpSolution s = solve_lp(lp, 0);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_GT(s.iterations, 0u);
}

TEST(Simplex, RedundantEqualities) {
  // x + y = 2 listed twice; min x → x = 0, y = 2.
  LpProblem lp;
  lp.objective = {1, 0};
  lp.constraints.push_back({{1, 1}, ConstraintSense::kEq, 2});
  lp.constraints.push_back({{1, 1}, ConstraintSense::kEq, 2});
  const LpSolution s = solve_lp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective_value, 0.0, 1e-8);
}

// ---------------------------------------------------------------------
// Restricted-path LP
// ---------------------------------------------------------------------

RestrictedProblem diamond_problem(const Graph& g, double demand) {
  // Two disjoint 2-hop paths 0→3.
  RestrictedProblem problem;
  problem.graph = &g;
  RestrictedCommodity c;
  c.demand = demand;
  c.candidates.push_back(Path{0, 3, {0, 2}});  // via vertex 1
  c.candidates.push_back(Path{0, 3, {1, 3}});  // via vertex 2
  problem.commodities.push_back(std::move(c));
  return problem;
}

Graph diamond() {
  Graph g(4);
  g.add_edge(0, 1);  // e0
  g.add_edge(0, 2);  // e1
  g.add_edge(1, 3);  // e2
  g.add_edge(2, 3);  // e3
  return g;
}

TEST(RestrictedExact, SplitsEvenly) {
  const Graph g = diamond();
  const RestrictedProblem problem = diamond_problem(g, 1.0);
  const RestrictedSolution s = solve_restricted_exact(problem);
  EXPECT_NEAR(s.congestion, 0.5, 1e-8);
  EXPECT_NEAR(s.weights[0][0] + s.weights[0][1], 1.0, 1e-8);
  EXPECT_NEAR(s.weights[0][0], 0.5, 1e-6);
  EXPECT_NEAR(s.lower_bound, s.congestion, 1e-6);
}

TEST(RestrictedExact, SinglePathForced) {
  const Graph g = diamond();
  RestrictedProblem problem;
  problem.graph = &g;
  RestrictedCommodity c;
  c.demand = 3.0;
  c.candidates.push_back(Path{0, 3, {0, 2}});
  problem.commodities.push_back(std::move(c));
  const RestrictedSolution s = solve_restricted_exact(problem);
  EXPECT_NEAR(s.congestion, 3.0, 1e-8);
}

TEST(RestrictedExact, TwoCommoditiesShareEdge) {
  // Path graph 0-1-2; commodity A: 0→2 (only path through both edges),
  // commodity B: 0→1. Congestion on edge (0,1) = dA + dB.
  Graph g(3);
  g.add_edge(0, 1);  // e0
  g.add_edge(1, 2);  // e1
  RestrictedProblem problem;
  problem.graph = &g;
  {
    RestrictedCommodity a;
    a.demand = 1.0;
    a.candidates.push_back(Path{0, 2, {0, 1}});
    problem.commodities.push_back(a);
  }
  {
    RestrictedCommodity b;
    b.demand = 2.0;
    b.candidates.push_back(Path{0, 1, {0}});
    problem.commodities.push_back(b);
  }
  const RestrictedSolution s = solve_restricted_exact(problem);
  EXPECT_NEAR(s.congestion, 3.0, 1e-8);
}

TEST(RestrictedExact, RespectsCapacities) {
  // Diamond with one fat route: capacities 4 on path A, 1 on path B.
  Graph g(4);
  g.add_edge(0, 1, 4.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 3, 4.0);
  g.add_edge(2, 3, 1.0);
  const RestrictedProblem problem = diamond_problem(g, 5.0);
  const RestrictedSolution s = solve_restricted_exact(problem);
  // Optimal: 4 on the fat path, 1 on the thin → congestion 1.
  EXPECT_NEAR(s.congestion, 1.0, 1e-6);
}

TEST(RestrictedMwu, MatchesExactOnDiamond) {
  const Graph g = diamond();
  const RestrictedProblem problem = diamond_problem(g, 1.0);
  RestrictedMwuOptions options;
  options.epsilon = 0.05;
  const RestrictedSolution s = solve_restricted_mwu(problem, options);
  EXPECT_NEAR(s.congestion, 0.5, 0.5 * 0.06);
  EXPECT_LE(s.lower_bound, 0.5 + 1e-9);
}

TEST(RestrictedMwu, CrossValidatesWithExactOnSampledSystems) {
  // Random KSP path systems on a torus; exact and MWU must agree to 1+ε.
  const Graph g = make_torus(4, 4);
  const KspRouting ksp(g, 3);
  Rng rng(7);
  const Demand demand = random_permutation_demand(g, rng);

  RestrictedProblem problem;
  problem.graph = &g;
  for (const Commodity& c : demand.commodities()) {
    RestrictedCommodity rc;
    rc.demand = c.amount;
    for (const Path& p : ksp.candidates(c.src, c.dst)) {
      rc.candidates.push_back(p.src == c.src ? p : Path{
          p.dst, p.src, {p.edges.rbegin(), p.edges.rend()}});
    }
    problem.commodities.push_back(std::move(rc));
  }

  const RestrictedSolution exact = solve_restricted_exact(problem);
  RestrictedMwuOptions options;
  options.epsilon = 0.05;
  const RestrictedSolution mwu = solve_restricted_mwu(problem, options);
  EXPECT_LE(exact.congestion, mwu.congestion + 1e-6);
  EXPECT_LE(mwu.congestion, exact.congestion * (1 + options.epsilon) + 1e-6);
  // Both lower bounds are genuine lower bounds on the same optimum.
  EXPECT_LE(exact.lower_bound, exact.congestion + 1e-6);
  EXPECT_LE(mwu.lower_bound, exact.congestion + 1e-6);
}

TEST(RestrictedWarm, RepeatSolveIsAcceptedWithoutPhases) {
  // Warm-starting from a solution of the *same* problem must short-circuit:
  // the accept test re-checks exactly the MWU stopping condition.
  const Graph g = diamond();
  const RestrictedProblem problem = diamond_problem(g, 1.0);
  RestrictedMwuOptions options;
  options.epsilon = 0.05;
  const RestrictedSolution cold = solve_restricted_mwu(problem, options);
  ASSERT_FALSE(cold.dual_lengths.empty());
  EXPECT_FALSE(cold.warm_accepted);
  EXPECT_GE(cold.phases, 1u);

  RestrictedWarmStart warm;
  warm.fractions = cold.weights;  // renormalized internally
  warm.lengths = cold.dual_lengths;
  options.warm = &warm;
  const RestrictedSolution rerun = solve_restricted_mwu(problem, options);
  EXPECT_TRUE(rerun.warm_accepted);
  EXPECT_EQ(rerun.phases, 0u);
  EXPECT_NEAR(rerun.congestion, cold.congestion, 1e-9);
  EXPECT_LE(rerun.congestion,
            (1 + options.epsilon) * rerun.lower_bound + 1e-9);
}

TEST(RestrictedWarm, DualBoundIsSoundAndScaleInvariant) {
  const Graph g = diamond();
  const RestrictedProblem problem = diamond_problem(g, 1.0);
  // Optimum is 0.5; ANY positive length vector must lower-bound it.
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> lengths(g.num_edges());
    for (double& l : lengths) l = 0.01 + rng.next_double();
    const double bound = restricted_dual_bound(problem, lengths);
    EXPECT_LE(bound, 0.5 + 1e-9);
    std::vector<double> scaled = lengths;
    for (double& l : scaled) l *= 1000.0;
    EXPECT_NEAR(restricted_dual_bound(problem, scaled), bound, 1e-9);
  }
  // The uniform vector is exactly tight on the symmetric diamond.
  const std::vector<double> uniform(g.num_edges(), 1.0);
  EXPECT_NEAR(restricted_dual_bound(problem, uniform), 0.5, 1e-12);
}

TEST(RestrictedWarm, RouteFractionsAppliesTheSplit) {
  const Graph g = diamond();
  const RestrictedProblem problem = diamond_problem(g, 1.0);
  const RestrictedSolution one_path =
      route_restricted_fractions(problem, {{1.0, 0.0}});
  EXPECT_NEAR(one_path.congestion, 1.0, 1e-12);
  const RestrictedSolution even =
      route_restricted_fractions(problem, {{0.5, 0.5}});
  EXPECT_NEAR(even.congestion, 0.5, 1e-12);
  // All-zero fractions fall back to a uniform split.
  const RestrictedSolution uniform =
      route_restricted_fractions(problem, {{0.0, 0.0}});
  EXPECT_NEAR(uniform.congestion, 0.5, 1e-12);
  // Unnormalized fractions are renormalized per commodity.
  const RestrictedSolution scaled =
      route_restricted_fractions(problem, {{2.0, 2.0}});
  EXPECT_NEAR(scaled.congestion, 0.5, 1e-12);
}

TEST(RestrictedWarm, StaleWarmStartCostsPhasesNotCorrectness) {
  // A lopsided warm split (congestion 1.0 vs optimum 0.5) fails the
  // accept test and the MWU re-solves from the warm lengths — landing on
  // the same (1+ε) guarantee as a cold solve.
  const Graph g = diamond();
  const RestrictedProblem problem = diamond_problem(g, 1.0);
  RestrictedWarmStart warm;
  warm.fractions = {{1.0, 0.0}};
  warm.lengths.assign(g.num_edges(), 1.0);
  RestrictedMwuOptions options;
  options.epsilon = 0.05;
  options.warm = &warm;
  const RestrictedSolution s = solve_restricted_mwu(problem, options);
  EXPECT_FALSE(s.warm_accepted);
  EXPECT_GE(s.phases, 1u);
  EXPECT_NEAR(s.congestion, 0.5, 0.5 * 0.06);
}

TEST(RestrictedValidate, RejectsMalformedProblems) {
  const Graph g = diamond();
  {
    RestrictedProblem p;
    p.graph = &g;
    RestrictedCommodity c;
    c.demand = 0;  // zero demand
    c.candidates.push_back(Path{0, 3, {0, 2}});
    p.commodities.push_back(c);
    EXPECT_THROW(validate_restricted_problem(p), CheckError);
  }
  {
    RestrictedProblem p;
    p.graph = &g;
    RestrictedCommodity c;
    c.demand = 1;  // no candidates
    p.commodities.push_back(c);
    EXPECT_THROW(validate_restricted_problem(p), CheckError);
  }
  {
    RestrictedProblem p;
    p.graph = &g;
    RestrictedCommodity c;
    c.demand = 1;
    c.candidates.push_back(Path{0, 3, {0, 2}});
    c.candidates.push_back(Path{0, 1, {0}});  // endpoint mismatch
    p.commodities.push_back(c);
    EXPECT_THROW(validate_restricted_problem(p), CheckError);
  }
}

TEST(RestrictedExact, WeightsCoverDemand) {
  const Graph g = diamond();
  const RestrictedProblem problem = diamond_problem(g, 7.0);
  const RestrictedSolution s = solve_restricted_exact(problem);
  double total = 0;
  for (double w : s.weights[0]) total += w;
  EXPECT_NEAR(total, 7.0, 1e-6);
}

}  // namespace
}  // namespace sor
