// Tests for the analysis utilities added on top of the core pipeline:
// exact Räcke mixture loads, path-overlap diversity, Gomory–Hu cut lower
// bounds, and the greedy online integral router.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/path_system.hpp"
#include "core/oracle.hpp"
#include "core/router.hpp"
#include "core/sampler.hpp"
#include "demand/cut_bound.hpp"
#include "demand/generators.hpp"
#include "flow/mcf.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "oblivious/ksp.hpp"
#include "oblivious/racke_routing.hpp"
#include "oblivious/valiant.hpp"
#include "tree/racke.hpp"

namespace sor {
namespace {

TEST(ExactMixtureLoad, MatchesMonteCarloEstimate) {
  const Graph g = make_torus(4, 4);
  RaeckeOptions options;
  options.seed = 1;
  const RaeckeEnsemble ensemble(g, options);

  Rng rng(2);
  const Demand demand = random_permutation_demand(g, rng);
  std::vector<std::tuple<Vertex, Vertex, double>> commodities;
  for (const Commodity& c : demand.commodities()) {
    commodities.emplace_back(c.src, c.dst, c.amount);
  }
  const std::vector<double> exact = exact_mixture_load(ensemble, commodities);

  // Monte Carlo with many samples converges to the exact load.
  RaeckeRouting routing(g, options);
  Rng mc_rng(3);
  const EdgeLoad mc = oblivious_route_demand(routing, demand, 512, mc_rng);
  // The two ensembles are built with the same seed → identical trees.
  double max_error = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    max_error = std::max(max_error, std::abs(exact[e] - mc[e]));
  }
  EXPECT_LT(max_error, 0.35);  // MC noise at 512 samples
}

TEST(ExactMixtureLoad, TotalLoadEqualsWeightedPathLengths) {
  const Graph g = make_grid(3, 3);
  RaeckeOptions options;
  options.seed = 4;
  options.num_trees = 3;
  const RaeckeEnsemble ensemble(g, options);
  const std::vector<std::tuple<Vertex, Vertex, double>> commodities{
      {0, 8, 2.0}};
  const auto load = exact_mixture_load(ensemble, commodities);
  double total = 0;
  for (double x : load) total += x;
  double expected = 0;
  for (std::size_t i = 0; i < ensemble.num_trees(); ++i) {
    expected += ensemble.tree_weight(i) * 2.0 *
                static_cast<double>(ensemble.tree(i).route(g, 0, 8).hops());
  }
  EXPECT_NEAR(total, expected, 1e-9);
}

TEST(Overlap, IdenticalPathsScoreOne) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  PathSystem ps;
  ps.add(Path{0, 2, {e01, e12}});
  ps.add(Path{0, 2, {e01, e12}});
  EXPECT_DOUBLE_EQ(mean_pairwise_overlap(ps), 1.0);
}

TEST(Overlap, DisjointPathsScoreZero) {
  Graph g(4);
  const EdgeId a1 = g.add_edge(0, 1);
  const EdgeId a2 = g.add_edge(1, 3);
  const EdgeId b1 = g.add_edge(0, 2);
  const EdgeId b2 = g.add_edge(2, 3);
  PathSystem ps;
  ps.add(Path{0, 3, {a1, a2}});
  ps.add(Path{0, 3, {b1, b2}});
  EXPECT_DOUBLE_EQ(mean_pairwise_overlap(ps), 0.0);
}

TEST(Overlap, SingleCandidatePairsAreSkipped) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  PathSystem ps;
  ps.add(Path{0, 1, {e01}});
  EXPECT_DOUBLE_EQ(mean_pairwise_overlap(ps), 0.0);
}

TEST(Overlap, KspIsMoreCorrelatedThanRacke) {
  // The E8/E10 mechanism: k-shortest-path candidate sets share corridor
  // edges; Räcke samples are load-diverse.
  const Graph g = make_grid(6, 6);
  const KspRouting ksp(g, 4);
  PathSystem ksp_system;
  const auto pairs = all_pairs(all_vertices(g));
  for (const VertexPair& pair : pairs) {
    for (const Path& p : ksp.candidates(pair.a, pair.b)) ksp_system.add(p);
  }
  RaeckeOptions options;
  options.seed = 5;
  const RaeckeRouting racke(g, options);
  SampleOptions sample;
  sample.k = 4;
  const PathSystem racke_system = sample_path_system(racke, pairs, sample, 6);

  EXPECT_GT(mean_pairwise_overlap(ksp_system),
            mean_pairwise_overlap(racke_system));
}

TEST(CutBound, SingleEdgeCut) {
  // Path graph: 2 units over the middle edge → OPT >= 2.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Demand d;
  d.add(0, 2, 2.0);
  const GomoryHuTree tree(g);
  const CutBound bound = best_gomory_hu_cut_bound(g, tree, d);
  EXPECT_DOUBLE_EQ(bound.bound, 2.0);
  EXPECT_DOUBLE_EQ(bound.cut_capacity, 1.0);
  EXPECT_DOUBLE_EQ(bound.demand_across, 2.0);
}

TEST(CutBound, DumbbellBridgeDominates) {
  const Graph g = make_dumbbell(4, 2);
  Demand d;
  d.add(1, 5, 3.0);  // across the 2-capacity bridge cut
  const GomoryHuTree tree(g);
  const CutBound bound = best_gomory_hu_cut_bound(g, tree, d);
  EXPECT_DOUBLE_EQ(bound.bound, 1.5);
}

TEST(CutBound, NeverExceedsOptAndOftenMatches) {
  // Validity: the cut bound is a lower bound on the MCF OPT; on
  // bottleneck-dominated instances it is tight.
  const Graph g = make_path_of_cliques(3, 4);
  Rng rng(7);
  const Demand d = random_permutation_demand(g, rng);
  const GomoryHuTree tree(g);
  const CutBound bound = best_gomory_hu_cut_bound(g, tree, d);
  const McfResult opt = min_congestion_routing(g, d.commodities());
  EXPECT_LE(bound.bound, opt.congestion * 1.01 + 1e-9);
  // On a path-of-cliques the bridge cuts dominate: the bound is within a
  // small factor of OPT.
  EXPECT_GE(bound.bound, opt.congestion * 0.5);
}

TEST(GreedyIntegral, RoutesAllPacketsDeterministically) {
  const std::uint32_t dim = 4;
  const Graph g = make_hypercube(dim);
  const ValiantHypercube routing(g, dim);
  Rng rng(8);
  const Demand demand = random_permutation_demand(g, rng);
  SampleOptions sample;
  sample.k = 4;
  const PathSystem ps =
      sample_path_system_for_demand(routing, demand, sample, 9);
  const SemiObliviousRouter router(g, ps);
  const IntegralRoute a = router.route_integral_greedy(demand);
  const IntegralRoute b = router.route_integral_greedy(demand);
  EXPECT_EQ(a.packet_paths.size(),
            static_cast<std::size_t>(std::llround(demand.total())));
  EXPECT_DOUBLE_EQ(a.congestion, b.congestion);
  for (const Path& p : a.packet_paths) EXPECT_TRUE(is_simple_path(g, p));
}

TEST(GreedyIntegral, SpreadsAcrossDisjointCandidates) {
  // 3 packets, 3 edge-disjoint candidates → greedy must use all three.
  Graph g(5);
  const EdgeId s1 = g.add_edge(0, 1);
  const EdgeId s2 = g.add_edge(1, 4);
  const EdgeId m1 = g.add_edge(0, 2);
  const EdgeId m2 = g.add_edge(2, 4);
  const EdgeId t1 = g.add_edge(0, 3);
  const EdgeId t2 = g.add_edge(3, 4);
  PathSystem ps;
  ps.add(Path{0, 4, {s1, s2}});
  ps.add(Path{0, 4, {m1, m2}});
  ps.add(Path{0, 4, {t1, t2}});
  Demand d;
  d.add(0, 4, 3.0);
  const SemiObliviousRouter router(g, ps);
  const IntegralRoute route = router.route_integral_greedy(d);
  EXPECT_DOUBLE_EQ(route.congestion, 1.0);
}

TEST(GreedyIntegral, ComparableToRoundedOnRealWorkload) {
  const std::uint32_t dim = 5;
  const Graph g = make_hypercube(dim);
  const ValiantHypercube routing(g, dim);
  Rng rng(10);
  const Demand demand = random_permutation_demand(g, rng);
  SampleOptions sample;
  sample.k = 6;
  const PathSystem ps =
      sample_path_system_for_demand(routing, demand, sample, 11);
  const SemiObliviousRouter router(g, ps);
  Rng round_rng(12);
  const IntegralRoute rounded = router.route_integral(demand, round_rng);
  const IntegralRoute greedy = router.route_integral_greedy(demand);
  // Greedy has no global view; allow 2× + 2 slack, typically it's close.
  EXPECT_LE(greedy.congestion, 2 * rounded.congestion + 2);
}

TEST(McfPaths, DecompositionCoversDemand) {
  const Graph g = make_torus(4, 4);
  Rng rng(13);
  const Demand demand = random_permutation_demand(g, rng);
  const std::vector<Commodity> commodities = demand.commodities();
  McfOptions options;
  options.record_paths = true;
  const McfResult r = min_congestion_routing(g, commodities, options);
  ASSERT_EQ(r.paths.size(), commodities.size());
  for (std::size_t j = 0; j < commodities.size(); ++j) {
    double total = 0;
    for (const auto& [path, weight] : r.paths[j]) {
      EXPECT_GT(weight, 0.0);
      EXPECT_EQ(path.src, commodities[j].src);
      EXPECT_EQ(path.dst, commodities[j].dst);
      EXPECT_TRUE(is_simple_path(g, path));
      total += weight;
    }
    EXPECT_NEAR(total, commodities[j].amount, 1e-6);
  }
  // Reassembling the decomposition reproduces the reported load.
  EdgeLoad rebuilt = zero_load(g);
  for (const auto& per_commodity : r.paths) {
    for (const auto& [path, weight] : per_commodity) {
      add_path_load(path, weight, rebuilt);
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NEAR(rebuilt[e], r.load[e], 1e-6);
  }
}

TEST(Oracle, TopKPathsAreNearOptimalOnBuildDemand) {
  const Graph g = make_torus(4, 4);
  Rng rng(14);
  const Demand demand = random_permutation_demand(g, rng);
  const OracleSelection oracle = demand_aware_path_system(g, demand, 4);
  EXPECT_EQ(oracle.system.num_pairs(), demand.support_size());
  EXPECT_LE(oracle.system.max_sparsity(), 4u);
  const SemiObliviousRouter router(g, oracle.system);
  const double congestion = router.route_fractional(demand).congestion;
  // Keeping the 4 heaviest decomposition paths loses little.
  EXPECT_LE(congestion, oracle.mcf.congestion * 1.8 + 1e-9);
}

TEST(Oracle, KOneKeepsExactlyHeaviestPath) {
  Graph g(4);  // diamond with asymmetric capacities
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 3, 3.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  Demand d;
  d.add(0, 3, 4.0);
  const OracleSelection oracle = demand_aware_path_system(g, d, 1);
  const auto paths = oracle.system.paths_oriented(0, 3);
  ASSERT_EQ(paths.size(), 1u);
  // The fat route carries 3 of the 4 units → it is the heaviest.
  EXPECT_EQ(path_vertices(g, paths[0])[1], 1u);
}

}  // namespace
}  // namespace sor
