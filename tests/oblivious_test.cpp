// Unit tests for src/oblivious: every routing implementation produces
// valid simple paths with the distribution/shape properties its contract
// promises (Valiant O(1) expected congestion on permutations, KSP ordering
// by cost, hop-constrained dilation bounds, ...).

#include <gtest/gtest.h>

#include <cmath>

#include "core/path_system.hpp"
#include "demand/generators.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "oblivious/hop_constrained.hpp"
#include "oblivious/ksp.hpp"
#include "oblivious/racke_routing.hpp"
#include "oblivious/random_walk.hpp"
#include "oblivious/routing.hpp"
#include "oblivious/shortest_path.hpp"
#include "oblivious/valiant.hpp"

namespace sor {
namespace {

void expect_valid_samples(const ObliviousRouting& routing, int trials,
                          std::uint64_t seed) {
  const Graph& g = routing.graph();
  Rng rng(seed);
  for (int i = 0; i < trials; ++i) {
    Vertex s = 0, t = 0;
    while (s == t) {
      s = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
      t = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
    }
    const Path p = routing.sample_path(s, t, rng);
    ASSERT_TRUE(is_simple_path(g, p)) << routing.name();
    ASSERT_EQ(p.src, s);
    ASSERT_EQ(p.dst, t);
    ASSERT_GE(p.hops(), 1u);
  }
}

TEST(ShortestPathRouting, ProducesShortestPaths) {
  const Graph g = make_grid(5, 5);
  const ShortestPathRouting routing(g);
  expect_valid_samples(routing, 50, 1);
  Rng rng(2);
  const Path p = routing.sample_path(0, 24, rng);
  EXPECT_EQ(p.hops(), 8u);  // manhattan distance corner-to-corner
}

TEST(ShortestPathRouting, IsDeterministic) {
  const Graph g = make_hypercube(4);
  const ShortestPathRouting routing(g);
  Rng a(1), b(999);
  EXPECT_EQ(routing.sample_path(3, 12, a), routing.sample_path(3, 12, b));
}

TEST(ShortestPathRouting, InverseCapacityMetricAvoidsThinEdges) {
  // Triangle: direct edge has tiny capacity; detour has fat edges.
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(0, 2, 0.05);
  const ShortestPathRouting routing(
      g, ShortestPathRouting::Metric::kInverseCapacity);
  Rng rng(1);
  EXPECT_EQ(routing.sample_path(0, 2, rng).hops(), 2u);
}

TEST(ValiantHypercube, PathsValidAndBounded) {
  const Graph g = make_hypercube(5);
  const ValiantHypercube routing(g, 5);
  expect_valid_samples(routing, 100, 3);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Path p = routing.sample_path(0, 31, rng);
    EXPECT_LE(p.hops(), 10u);  // two greedy legs of <= d hops
  }
}

TEST(ValiantHypercube, BitFixingIsGreedy) {
  const Graph g = make_hypercube(4);
  const ValiantHypercube routing(g, 4);
  const Path p = routing.bit_fixing_path(0b0000, 0b1011);
  EXPECT_EQ(p.hops(), 3u);  // exactly the Hamming distance
}

TEST(ValiantHypercube, RejectsNonHypercube) {
  const Graph g = make_grid(4, 4);
  EXPECT_THROW(ValiantHypercube(g, 4), CheckError);
}

TEST(ValiantHypercube, PermutationCongestionIsConstant) {
  // The Valiant guarantee: expected per-edge congestion on a permutation
  // demand is O(1). Empirically the max over edges stays small.
  const std::uint32_t d = 6;
  const Graph g = make_hypercube(d);
  const ValiantHypercube routing(g, d);
  Rng rng(5);
  const Demand demand = bit_complement_demand(d);
  const double congestion = oblivious_congestion(routing, demand, 32, rng);
  // Bit-complement is the classic killer for deterministic routing; the
  // randomized Valiant routing keeps it at a small constant.
  EXPECT_LT(congestion, 6.0);
}

TEST(ValiantHypercube, BeatsDeterministicOnBitComplement) {
  const std::uint32_t d = 6;
  const Graph g = make_hypercube(d);
  const ValiantHypercube valiant(g, d);
  const ShortestPathRouting deterministic(g);
  Rng rng(6);
  const Demand demand = bit_complement_demand(d);
  const double valiant_cong = oblivious_congestion(valiant, demand, 32, rng);
  const double det_cong = oblivious_congestion(deterministic, demand, 1, rng);
  EXPECT_GT(det_cong, 2.0 * valiant_cong);
}

TEST(RaeckeRouting, ValidPathsOnIrregularGraph) {
  const Graph g = make_erdos_renyi(40, 0.15, 17);
  RaeckeOptions options;
  options.seed = 7;
  const RaeckeRouting routing(g, options);
  expect_valid_samples(routing, 100, 8);
}

TEST(KspPaths, OrderedDistinctAndCorrectCount) {
  const Graph g = make_grid(4, 4);
  const std::vector<double> unit(g.num_edges(), 1.0);
  const auto paths = k_shortest_paths(g, 0, 15, 5, unit);
  ASSERT_EQ(paths.size(), 5u);
  double prev = 0;
  std::set<std::vector<EdgeId>> seen;
  for (const Path& p : paths) {
    EXPECT_TRUE(is_simple_path(g, p));
    EXPECT_EQ(p.src, 0u);
    EXPECT_EQ(p.dst, 15u);
    const double cost = path_cost(g, p, unit);
    EXPECT_GE(cost, prev);
    prev = cost;
    EXPECT_TRUE(seen.insert(p.edges).second) << "duplicate path";
  }
  EXPECT_EQ(paths[0].hops(), 6u);  // shortest corner-to-corner
}

TEST(KspPaths, ExhaustsSmallGraphs) {
  // Path graph has exactly one simple 0→2 path.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<double> unit(g.num_edges(), 1.0);
  EXPECT_EQ(k_shortest_paths(g, 0, 2, 10, unit).size(), 1u);
  // Diamond has exactly two.
  Graph h(4);
  h.add_edge(0, 1);
  h.add_edge(0, 2);
  h.add_edge(1, 3);
  h.add_edge(2, 3);
  EXPECT_EQ(k_shortest_paths(h, 0, 3, 10, std::vector<double>(4, 1.0)).size(),
            2u);
}

TEST(KspRouting, SamplesFromCandidateSet) {
  const Graph g = make_torus(3, 3);
  const KspRouting routing(g, 4);
  expect_valid_samples(routing, 100, 9);
  // All samples are among the cached candidates.
  Rng rng(10);
  const auto& cands = routing.candidates(0, 4);
  for (int i = 0; i < 20; ++i) {
    const Path p = routing.sample_path(0, 4, rng);
    bool found = false;
    for (const Path& c : cands) {
      if (p == c || p == reversed(c)) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(RandomWalkRouting, AlwaysArrives) {
  const Graph g = make_grid(4, 4);
  const RandomWalkRouting routing(g, 10);  // tiny cap forces the fallback
  expect_valid_samples(routing, 100, 11);
}

TEST(HopConstrained, RespectsHopBudget) {
  const Graph g = make_grid(5, 5);
  for (std::uint32_t h : {2u, 4u, 8u, 16u}) {
    const HopConstrainedRouting routing(g, h);
    Rng rng(12 + h);
    for (int i = 0; i < 50; ++i) {
      Vertex s = 0, t = 0;
      while (s == t) {
        s = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
        t = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
      }
      const Path p = routing.sample_path(s, t, rng);
      const std::uint32_t dist = bfs(g, s).hops[t];
      EXPECT_LE(p.hops(), std::max(h, dist));
      EXPECT_TRUE(is_simple_path(g, p));
    }
  }
}

TEST(HopConstrained, LargeBudgetSpreadsLoad) {
  // With the budget at the diameter, the intermediate pool covers many
  // vertices, so repeated samples should produce multiple distinct paths.
  const Graph g = make_torus(4, 4);
  const HopConstrainedRouting routing(g, 8);
  Rng rng(13);
  std::set<std::vector<EdgeId>> distinct;
  for (int i = 0; i < 40; ++i) {
    distinct.insert(routing.sample_path(0, 10, rng).edges);
  }
  EXPECT_GT(distinct.size(), 3u);
}

TEST(ObliviousHelpers, RouteDemandLoadMatchesTotal) {
  const Graph g = make_grid(3, 3);
  const ShortestPathRouting routing(g);
  Demand d;
  d.add(0, 8, 2.0);
  Rng rng(14);
  const EdgeLoad load = oblivious_route_demand(routing, d, 4, rng);
  // Deterministic routing: all 4 samples identical, load = demand on the
  // one path, total load = 2.0 × hops.
  double total = 0;
  for (double x : load) total += x;
  EXPECT_NEAR(total, 2.0 * 4.0, 1e-9);
}

}  // namespace
}  // namespace sor
