// Unit tests for src/telemetry/observer: the convergence-trace reservoir,
// progress/deadline hooks threaded through the solvers, the global
// collector, cost scopes, and the zero-overhead guarantee when the
// SOR_TELEMETRY kill switch is off.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <vector>

#include "flow/mcf.hpp"
#include "graph/graph.hpp"
#include "lp/path_lp.hpp"
#include "lp/simplex.hpp"
#include "telemetry/export.hpp"
#include "telemetry/observer.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace sor {
namespace {

// Recording tests must work regardless of the SOR_TELEMETRY environment
// the suite runs under.
struct ScopedEnable {
  explicit ScopedEnable(bool on = true) : previous(telemetry::enabled()) {
    telemetry::set_enabled(on);
  }
  ~ScopedEnable() { telemetry::set_enabled(previous); }
  bool previous;
};

Graph diamond() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

RestrictedProblem diamond_problem(const Graph& g, double demand) {
  RestrictedProblem problem;
  problem.graph = &g;
  RestrictedCommodity c;
  c.demand = demand;
  c.candidates.push_back(Path{0, 3, {0, 2}});
  c.candidates.push_back(Path{0, 3, {1, 3}});
  problem.commodities.push_back(std::move(c));
  return problem;
}

LpProblem small_lp() {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6 as minimization.
  LpProblem lp;
  lp.objective = {-1, -1};
  lp.constraints.push_back({{1, 2}, ConstraintSense::kLe, 4});
  lp.constraints.push_back({{3, 1}, ConstraintSense::kLe, 6});
  return lp;
}

TEST(SolveObserver, ReservoirStaysBoundedAndOrdered) {
  const ScopedEnable enable;
  telemetry::ConvergenceCollector::global().clear();
  {
    telemetry::SolveObserver observer("test_reservoir");
    const std::uint64_t n = 100000;
    for (std::uint64_t i = 1; i <= n; ++i) {
      // Fluctuating raw objective; the stored envelope must still be
      // monotone.
      const double objective = 1.0 / static_cast<double>(i) +
                               ((i % 7 == 0) ? 0.5 : 0.0);
      observer.observe(i, objective, 0);
    }
    EXPECT_EQ(observer.iterations(), n);
    EXPECT_LT(observer.points().size(), telemetry::SolveObserver::kMaxPoints);
    EXPECT_GE(observer.points().size(),
              telemetry::SolveObserver::kMaxPoints / 2);
    for (std::size_t i = 1; i < observer.points().size(); ++i) {
      EXPECT_LT(observer.points()[i - 1].iteration,
                observer.points()[i].iteration);
      EXPECT_GE(observer.points()[i - 1].objective + 1e-12,
                observer.points()[i].objective);
    }
  }
  const auto traces = telemetry::ConvergenceCollector::global().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].solver, "test_reservoir");
  EXPECT_EQ(traces[0].iterations, 100000u);
}

TEST(SolveObserver, GapKnownOnlyOnceBoundAppearsAndEnvelopesHold) {
  const ScopedEnable enable;
  telemetry::ConvergenceCollector::global().clear();
  telemetry::SolveObserver observer("test_gap");
  observer.observe(1, 10.0, 0);    // no dual info yet
  observer.observe(2, 8.0, 2.0);   // bound appears
  observer.observe(3, 9.0, 1.0);   // worse on both; envelopes must hold
  observer.observe(4, 4.0, 4.0);
  const auto& pts = observer.points();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].gap, -1);
  EXPECT_EQ(pts[0].bound, 0);
  EXPECT_NEAR(pts[1].gap, 8.0 / 2.0 - 1, 1e-12);
  // Envelope: objective keeps the best (min), bound the best (max).
  EXPECT_NEAR(pts[2].objective, 8.0, 1e-12);
  EXPECT_NEAR(pts[2].bound, 2.0, 1e-12);
  EXPECT_NEAR(pts[3].gap, 0.0, 1e-12);
}

TEST(SolveObserver, CountersTravelWithTheTrace) {
  const ScopedEnable enable;
  telemetry::ConvergenceCollector::global().clear();
  {
    telemetry::SolveObserver observer("test_counts", "labelled");
    observer.count("widgets", 3);
    observer.count("widgets", 2);
    observer.count("gadgets");
  }
  const auto traces = telemetry::ConvergenceCollector::global().snapshot();
  ASSERT_EQ(traces.size(), 1u);  // counts-only traces are kept
  EXPECT_EQ(traces[0].label, "labelled");
  ASSERT_EQ(traces[0].counters.size(), 2u);
  EXPECT_EQ(traces[0].counters[0].first, "widgets");
  EXPECT_EQ(traces[0].counters[0].second, 5u);
  EXPECT_EQ(traces[0].counters[1].second, 1u);
}

TEST(Collector, CapacityBoundsAndCountsDrops) {
  telemetry::ConvergenceCollector collector(2);
  for (int i = 0; i < 5; ++i) {
    telemetry::ConvergenceTrace t;
    t.solver = "s";
    t.iterations = 1;
    collector.add(std::move(t));
  }
  EXPECT_EQ(collector.snapshot().size(), 2u);
  EXPECT_EQ(collector.dropped(), 3u);
  collector.clear();
  EXPECT_TRUE(collector.snapshot().empty());
  EXPECT_EQ(collector.dropped(), 0u);
  collector.set_capacity(4);
  EXPECT_EQ(collector.capacity(), 4u);
}

TEST(ProgressScope, NestsAndRestores) {
  EXPECT_EQ(telemetry::current_reporter(), nullptr);
  telemetry::ProgressReporter outer;
  {
    telemetry::ProgressScope a(outer);
    EXPECT_EQ(telemetry::current_reporter(), &outer);
    telemetry::ProgressReporter inner;
    {
      telemetry::ProgressScope b(inner);
      EXPECT_EQ(telemetry::current_reporter(), &inner);
    }
    EXPECT_EQ(telemetry::current_reporter(), &outer);
  }
  EXPECT_EQ(telemetry::current_reporter(), nullptr);
  EXPECT_FALSE(telemetry::solve_deadline_exceeded());
}

TEST(ProgressScope, PropagatesIntoPoolWorkers) {
  telemetry::ProgressReporter reporter;
  reporter.cancel = [] { return true; };
  telemetry::ProgressScope scope(reporter);
  std::atomic<int> exceeded{0};
  parallel_for(64, [&](std::size_t) {
    if (telemetry::solve_deadline_exceeded()) exceeded.fetch_add(1);
  });
  EXPECT_EQ(exceeded.load(), 64);
}

TEST(ProgressScope, OnPointSeesEveryObservationBeforeDownsampling) {
  const ScopedEnable enable;
  telemetry::ConvergenceCollector::global().clear();
  std::uint64_t point_calls = 0;
  std::uint64_t trace_calls = 0;
  telemetry::ProgressReporter reporter;
  reporter.on_point = [&](const telemetry::ConvergenceTrace&,
                          const telemetry::ConvergencePoint&) {
    ++point_calls;
  };
  reporter.on_trace = [&](const telemetry::ConvergenceTrace&) {
    ++trace_calls;
  };
  telemetry::ProgressScope scope(reporter);
  {
    telemetry::SolveObserver observer("test_hooks");
    for (std::uint64_t i = 1; i <= 5000; ++i) observer.observe(i, 1.0, 0);
  }
  EXPECT_EQ(point_calls, 5000u);  // every observation, not the downsample
  EXPECT_EQ(trace_calls, 1u);
}

TEST(Deadline, ExpiredDeadlineTruncatesSimplex) {
  telemetry::ProgressReporter reporter;
  reporter.deadline_seconds = 1e-12;  // long expired at the first poll
  telemetry::ProgressScope scope(reporter);
  const LpSolution s = solve_lp(small_lp());
  EXPECT_EQ(s.status, LpStatus::kTruncated);
  EXPECT_TRUE(s.x.empty());
}

TEST(Deadline, CancelHookTruncatesSimplex) {
  telemetry::ProgressReporter reporter;
  reporter.cancel = [] { return true; };
  telemetry::ProgressScope scope(reporter);
  EXPECT_EQ(solve_lp(small_lp()).status, LpStatus::kTruncated);
}

TEST(Deadline, IterLimitIsDistinguishableFromTruncation) {
  // Without any reporter the pivot cap yields kIterLimit, not kTruncated.
  const LpSolution s = solve_lp(small_lp(), 1);
  EXPECT_EQ(s.status, LpStatus::kIterLimit);
  EXPECT_TRUE(s.x.empty());
}

TEST(Deadline, ExactBackendFallsBackToUniformSplit) {
  const Graph g = diamond();
  const RestrictedProblem problem = diamond_problem(g, 1.0);
  telemetry::ProgressReporter reporter;
  reporter.cancel = [] { return true; };
  telemetry::ProgressScope scope(reporter);
  const RestrictedSolution s = solve_restricted_exact(problem);
  EXPECT_TRUE(s.truncated);
  // The documented fallback routes a uniform split — optimal on the
  // symmetric diamond, and always a feasible routing.
  EXPECT_NEAR(s.congestion, 0.5, 1e-9);
}

TEST(Deadline, MwuTruncatesAtPhaseBoundaryWithFeasiblePrefix) {
  // Asymmetric capacities + tight epsilon so the full solve needs
  // several phases; the truncated one must stop after the first.
  Graph g(4);
  g.add_edge(0, 1, 4.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 3, 4.0);
  g.add_edge(2, 3, 1.0);
  const RestrictedProblem problem = diamond_problem(g, 5.0);
  RestrictedMwuOptions options;
  options.epsilon = 0.01;
  const RestrictedSolution full = solve_restricted_mwu(problem, options);
  ASSERT_FALSE(full.truncated);
  ASSERT_GT(full.phases, 1u);

  telemetry::ProgressReporter reporter;
  reporter.cancel = [] { return true; };
  telemetry::ProgressScope scope(reporter);
  const RestrictedSolution s = solve_restricted_mwu(problem, options);
  EXPECT_TRUE(s.truncated);
  EXPECT_EQ(s.phases, 1u);
  // The scaled one-phase prefix is a real routing of the full demand.
  EXPECT_TRUE(std::isfinite(s.congestion));
  EXPECT_GE(s.congestion, full.congestion - 1e-9);
}

TEST(Deadline, McfTruncatesAtPhaseBoundaryWithCertifiedBound) {
  // Asymmetric capacities force the phase loop to mix paths: after one
  // phase all flow rides a single shortest path, far from the tight
  // capacity-proportional split, so the full solve needs many phases.
  Graph g(4);
  g.add_edge(0, 1, 4.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 3, 4.0);
  g.add_edge(2, 3, 1.0);
  std::vector<Commodity> commodities{{0, 3, 5.0}};
  McfOptions options;
  options.epsilon = 0.01;
  const McfResult full = min_congestion_routing(g, commodities, options);
  ASSERT_FALSE(full.truncated);
  ASSERT_GT(full.phases, 1u);

  telemetry::ProgressReporter reporter;
  reporter.cancel = [] { return true; };
  telemetry::ProgressScope scope(reporter);
  const McfResult s = min_congestion_routing(g, commodities, options);
  EXPECT_TRUE(s.truncated);
  EXPECT_EQ(s.phases, 1u);
  EXPECT_TRUE(std::isfinite(s.congestion));
  EXPECT_GT(s.congestion, 0);
  // The dual bound is certified regardless of truncation.
  EXPECT_LE(s.lower_bound, full.congestion + 1e-9);
}

TEST(KillSwitch, DisabledTelemetryInvokesNoCallbacksAndSolvesIdentically) {
  LpSolution on;
  {
    const ScopedEnable enable(true);
    on = solve_lp(small_lp());
  }
  std::uint64_t callbacks = 0;
  LpSolution off;
  {
    const ScopedEnable disable(false);
    telemetry::ProgressReporter reporter;
    reporter.on_point = [&](const telemetry::ConvergenceTrace&,
                            const telemetry::ConvergencePoint&) {
      ++callbacks;
    };
    reporter.on_trace = [&](const telemetry::ConvergenceTrace&) {
      ++callbacks;
    };
    telemetry::ProgressScope scope(reporter);
    telemetry::SolveObserver probe("test_disabled");
    probe.observe(1, 1.0, 0);
    EXPECT_FALSE(probe.active());
    EXPECT_EQ(probe.iterations(), 0u);
    off = solve_lp(small_lp());
  }
  EXPECT_EQ(callbacks, 0u);
  // Bit-identical results: observability must not perturb the solve.
  ASSERT_EQ(off.status, on.status);
  ASSERT_EQ(off.x.size(), on.x.size());
  for (std::size_t i = 0; i < on.x.size(); ++i) {
    EXPECT_EQ(off.x[i], on.x[i]);
  }
  EXPECT_EQ(off.objective_value, on.objective_value);
  EXPECT_EQ(off.iterations, on.iterations);
}

TEST(KillSwitch, DeadlineStillWorksWithTelemetryOff) {
  // The budget is control-plane behavior, not observability.
  const ScopedEnable disable(false);
  telemetry::ProgressReporter reporter;
  reporter.cancel = [] { return true; };
  telemetry::ProgressScope scope(reporter);
  EXPECT_EQ(solve_lp(small_lp()).status, LpStatus::kTruncated);
}

TEST(CostScope, ChargesTimeAndCallsWhenEnabled) {
  const ScopedEnable enable;
  auto& ns = telemetry::Registry::global().counter("cost/test_scope/ns");
  auto& calls = telemetry::Registry::global().counter("cost/test_scope/calls");
  ns.reset();
  calls.reset();
  {
    SOR_COST_SCOPE("test_scope");
    volatile double sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(calls.value(), 1u);
  EXPECT_GT(ns.value(), 0u);

  telemetry::set_enabled(false);
  {
    SOR_COST_SCOPE("test_scope");
  }
  telemetry::set_enabled(true);
  EXPECT_EQ(calls.value(), 1u);  // disabled scope charged nothing
}

TEST(Export, ConvergenceBlockSerializesTraces) {
  const ScopedEnable enable;
  auto& collector = telemetry::ConvergenceCollector::global();
  collector.clear();
  {
    telemetry::SolveObserver observer("test_export", "lbl");
    observer.observe(1, 2.0, 1.0);
    observer.observe(2, 1.5, 1.2);
    observer.count("steps", 2);
  }
  const telemetry::JsonValue doc = telemetry::convergence_to_json();
  EXPECT_EQ(doc.at("capacity").as_number(),
            static_cast<double>(collector.capacity()));
  EXPECT_EQ(doc.at("dropped").as_number(), 0);
  ASSERT_EQ(doc.at("traces").size(), 1u);
  const telemetry::JsonValue& trace = doc.at("traces").at(0);
  EXPECT_EQ(trace.at("solver").as_string(), "test_export");
  EXPECT_EQ(trace.at("label").as_string(), "lbl");
  EXPECT_EQ(trace.at("iterations").as_number(), 2);
  EXPECT_FALSE(trace.at("truncated").as_bool());
  ASSERT_EQ(trace.at("points").size(), 2u);
  EXPECT_NEAR(trace.at("points").at(1).at("gap").as_number(), 1.5 / 1.2 - 1,
              1e-9);
  collector.clear();
}

}  // namespace
}  // namespace sor
