// Unit tests for the routing-quality observatory's predictor scoring
// (score_prediction + DemandPredictor::mape_summary) and the
// QualityTracker churn signals. The predictor tests pin EXACT expected
// MAPE values for the EWMA and peak predictors on constant, linearly
// drifting, and adversarial flip-flop traces — the scoring is pure
// arithmetic, so the expectations are closed-form.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/path_system.hpp"
#include "demand/demand.hpp"
#include "engine/predictor.hpp"
#include "engine/quality.hpp"

namespace sor::engine {
namespace {

Demand single(double amount) {
  Demand d;
  d.add(0, 1, amount);
  return d;
}

// ---------------------------------------------------------------------------
// score_prediction

TEST(ScorePrediction, EmptyMatricesScoreZero) {
  const PredictorScore score = score_prediction(Demand{}, Demand{});
  EXPECT_EQ(score.pairs, 0u);
  EXPECT_DOUBLE_EQ(score.mape, 0);
  EXPECT_EQ(score.worst_src, kInvalidVertex);
  EXPECT_EQ(score.worst_dst, kInvalidVertex);
}

TEST(ScorePrediction, RelativeErrorPerPair) {
  Demand realized;
  realized.add(0, 1, 10);
  realized.add(2, 3, 4);
  Demand predicted;
  predicted.add(0, 1, 8);   // |8-10|/10 = 0.2
  predicted.add(2, 3, 5);   // |5-4|/4  = 0.25
  const PredictorScore score = score_prediction(predicted, realized);
  EXPECT_EQ(score.pairs, 2u);
  EXPECT_DOUBLE_EQ(score.mape, (0.2 + 0.25) / 2);
  EXPECT_DOUBLE_EQ(score.worst_error, 0.25);
  EXPECT_EQ(score.worst_src, 2u);
  EXPECT_EQ(score.worst_dst, 3u);
}

TEST(ScorePrediction, GhostPairContributesExactlyOne) {
  // A pair the predictor invented (realized 0) counts as 100% wrong —
  // bounded, so one ghost cannot swamp the mean.
  Demand realized;
  realized.add(0, 1, 10);
  Demand predicted;
  predicted.add(0, 1, 10);
  predicted.add(5, 6, 1000);
  const PredictorScore score = score_prediction(predicted, realized);
  EXPECT_EQ(score.pairs, 2u);
  EXPECT_DOUBLE_EQ(score.mape, 0.5);  // (0 + 1) / 2
  EXPECT_DOUBLE_EQ(score.worst_error, 1.0);
  EXPECT_EQ(score.worst_src, 5u);
  EXPECT_EQ(score.worst_dst, 6u);
}

TEST(ScorePrediction, MissedPairScoresFullError) {
  // Realized demand the predictor missed entirely: |0 - r| / r = 1.
  Demand realized;
  realized.add(0, 1, 7);
  const PredictorScore score = score_prediction(Demand{}, realized);
  EXPECT_EQ(score.pairs, 1u);
  EXPECT_DOUBLE_EQ(score.mape, 1.0);
}

TEST(ScorePrediction, WorstPairTieBreaksToSortedOrder) {
  // Both pairs attain the max error; the FIRST in sorted (a, b) order
  // wins, so the worst pair replays deterministically.
  Demand realized;
  realized.add(2, 3, 10);
  realized.add(0, 1, 10);
  Demand predicted;
  predicted.add(2, 3, 20);
  predicted.add(0, 1, 20);
  const PredictorScore score = score_prediction(predicted, realized);
  EXPECT_DOUBLE_EQ(score.worst_error, 1.0);
  EXPECT_EQ(score.worst_src, 0u);
  EXPECT_EQ(score.worst_dst, 1u);
}

// ---------------------------------------------------------------------------
// Predictor MAPE histories (satellite: exact expected values per trace)

TEST(PredictorMape, EwmaConstantTraceIsExact) {
  EwmaPredictor p(0.5);
  for (int t = 0; t < 5; ++t) p.observe(single(10));
  const StatsSummary mape = p.mape_summary();
  EXPECT_EQ(mape.count, 4u);  // no pending prediction at the bootstrap
  EXPECT_DOUBLE_EQ(mape.mean, 0);
  EXPECT_DOUBLE_EQ(mape.max, 0);
}

TEST(PredictorMape, EwmaLinearDriftIsExact) {
  // d_t = 10 + t, alpha = 0.5. States: 10, 10.5, 11.25, 12.125; pending
  // predictions lag the drift, so the per-epoch MAPEs are
  //   1/11, 1.5/12, 1.75/13, 1.875/14.
  EwmaPredictor p(0.5);
  for (int t = 0; t < 5; ++t) p.observe(single(10 + t));
  const StatsSummary mape = p.mape_summary();
  EXPECT_EQ(mape.count, 4u);
  const double expected_mean =
      (1.0 / 11 + 1.5 / 12 + 1.75 / 13 + 1.875 / 14) / 4;
  EXPECT_NEAR(mape.mean, expected_mean, 1e-12);
  EXPECT_NEAR(mape.max, 1.75 / 13, 1e-12);
}

TEST(PredictorMape, EwmaFlipFlopIsExact) {
  // Adversarial alternation 10, 20, 10, 20, 10, 20: the EWMA is always
  // chasing the previous value. Pending states 10, 15, 12.5, 16.25,
  // 13.125 give MAPEs 0.5, 0.5, 0.375, 0.625, 0.34375.
  EwmaPredictor p(0.5);
  for (int t = 0; t < 6; ++t) p.observe(single(t % 2 == 0 ? 10 : 20));
  const StatsSummary mape = p.mape_summary();
  EXPECT_EQ(mape.count, 5u);
  EXPECT_NEAR(mape.mean, (0.5 + 0.5 + 0.375 + 0.625 + 0.34375) / 5, 1e-12);
  EXPECT_DOUBLE_EQ(mape.max, 0.625);
}

TEST(PredictorMape, PeakConstantTraceIsExact) {
  PeakPredictor p(4);
  for (int t = 0; t < 5; ++t) p.observe(single(10));
  const StatsSummary mape = p.mape_summary();
  EXPECT_EQ(mape.count, 4u);
  EXPECT_DOUBLE_EQ(mape.mean, 0);
  EXPECT_DOUBLE_EQ(mape.max, 0);
}

TEST(PredictorMape, PeakLinearDriftIsExact) {
  // d_t = 10 + t: the window max is always the previous value, so the
  // MAPE at epoch t is 1 / (10 + t):  1/11, 1/12, 1/13, 1/14.
  PeakPredictor p(4);
  for (int t = 0; t < 5; ++t) p.observe(single(10 + t));
  const StatsSummary mape = p.mape_summary();
  EXPECT_EQ(mape.count, 4u);
  EXPECT_NEAR(mape.mean, (1.0 / 11 + 1.0 / 12 + 1.0 / 13 + 1.0 / 14) / 4,
              1e-12);
  EXPECT_NEAR(mape.max, 1.0 / 11, 1e-12);
}

TEST(PredictorMape, PeakFlipFlopIsExact) {
  // Window 2 over 10, 20, 10, 20, 10: predictions 10, 20, 20, 20 give
  // MAPEs 0.5, 1.0, 0.0, 1.0 — the conservative peak is perfect on the
  // high phase and 100% high on the low phase.
  PeakPredictor p(2);
  for (int t = 0; t < 5; ++t) p.observe(single(t % 2 == 0 ? 10 : 20));
  const StatsSummary mape = p.mape_summary();
  EXPECT_EQ(mape.count, 4u);
  EXPECT_DOUBLE_EQ(mape.mean, (0.5 + 1.0 + 0.0 + 1.0) / 4);
  EXPECT_DOUBLE_EQ(mape.max, 1.0);
}

// ---------------------------------------------------------------------------
// QualityTracker churn

Path make_path(Vertex src, Vertex dst, std::vector<EdgeId> edges) {
  Path p;
  p.src = src;
  p.dst = dst;
  p.edges = std::move(edges);
  return p;
}

class QualityTrackerChurnTest : public ::testing::Test {
 protected:
  QualityTrackerChurnTest() {
    system_.add(make_path(0, 1, {0}));
    system_.add(make_path(0, 1, {1, 2}));
    system_.add(make_path(2, 3, {3}));
  }

  PathSystem system_;
};

TEST_F(QualityTrackerChurnTest, FirstEpochHasZeroChurn) {
  QualityTracker tracker({});
  PathActivation mask(system_);
  InstalledSplit split;
  split[VertexPair::canonical(0, 1)][make_path(0, 1, {0})] = 1.0;
  EpochQuality q;
  tracker.observe_install(mask, split, q);
  EXPECT_EQ(q.mask_churn, 0u);
  EXPECT_DOUBLE_EQ(q.weight_l1_drift, 0);
  EXPECT_EQ(q.top_path_flips, 0u);
}

TEST_F(QualityTrackerChurnTest, FlagFlipAndExtraCountAsHamming) {
  QualityTracker tracker({});
  PathActivation mask(system_);
  InstalledSplit split;
  EpochQuality q0;
  tracker.observe_install(mask, split, q0);

  // One base flag flipped + one fallback installed = Hamming 2.
  mask.set_active(0, 1, 0, false);
  mask.add_extra(make_path(2, 3, {4, 5}));
  EpochQuality q1;
  tracker.observe_install(mask, split, q1);
  EXPECT_EQ(q1.mask_churn, 2u);

  // Stable mask again: churn back to zero.
  EpochQuality q2;
  tracker.observe_install(mask, split, q2);
  EXPECT_EQ(q2.mask_churn, 0u);
}

TEST_F(QualityTrackerChurnTest, WeightDriftAndTopFlipAreExact) {
  QualityTracker tracker({});
  PathActivation mask(system_);
  const Path direct = make_path(0, 1, {0});
  const Path detour = make_path(0, 1, {1, 2});
  const VertexPair pair = VertexPair::canonical(0, 1);

  InstalledSplit before;
  before[pair][direct] = 1.0;
  EpochQuality q0;
  tracker.observe_install(mask, before, q0);

  // Shift 60% of the pair onto the detour: L1 drift is
  // |0.4 - 1.0| + |0.6 - 0| = 1.2, and the top path flips.
  InstalledSplit after;
  after[pair][direct] = 0.4;
  after[pair][detour] = 0.6;
  EpochQuality q1;
  tracker.observe_install(mask, after, q1);
  EXPECT_NEAR(q1.weight_l1_drift, 1.2, 1e-12);
  EXPECT_EQ(q1.top_path_flips, 1u);

  // Unchanged split: no drift, no flips.
  EpochQuality q2;
  tracker.observe_install(mask, after, q2);
  EXPECT_DOUBLE_EQ(q2.weight_l1_drift, 0);
  EXPECT_EQ(q2.top_path_flips, 0u);
}

TEST_F(QualityTrackerChurnTest, PairAppearingCountsWholeWeight) {
  // A pair installed only in the new epoch contributes its whole weight
  // sum to the drift but cannot flip (no previous top to compare).
  QualityTracker tracker({});
  PathActivation mask(system_);
  InstalledSplit before;
  before[VertexPair::canonical(0, 1)][make_path(0, 1, {0})] = 1.0;
  EpochQuality q0;
  tracker.observe_install(mask, before, q0);

  InstalledSplit after = before;
  after[VertexPair::canonical(2, 3)][make_path(2, 3, {3})] = 1.0;
  EpochQuality q1;
  tracker.observe_install(mask, after, q1);
  EXPECT_NEAR(q1.weight_l1_drift, 1.0, 1e-12);
  EXPECT_EQ(q1.top_path_flips, 0u);
}

TEST(QualityTrackerTest, ShadowDueFollowsSamplingContract) {
  QualityOptions off;
  EXPECT_FALSE(QualityTracker(off).shadow_due(0));

  QualityOptions every2;
  every2.shadow_every = 2;
  const QualityTracker tracker(every2);
  EXPECT_TRUE(tracker.shadow_due(0));  // epoch 0 always sampled
  EXPECT_FALSE(tracker.shadow_due(1));
  EXPECT_TRUE(tracker.shadow_due(2));
  EXPECT_FALSE(tracker.shadow_due(3));
}

}  // namespace
}  // namespace sor::engine
