// Tests for the paper's small reduction lemmas as algebraic facts of the
// implementation (Section 5.4): demand-sum subadditivity (Lemma 5.15),
// the trivial congestion bounds (Lemma 5.16), and the poly-boundedness
// reduction's scaling step (Lemma 5.17's mechanics).

#include <gtest/gtest.h>

#include <cmath>

#include "core/router.hpp"
#include "core/sampler.hpp"
#include "demand/generators.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "oblivious/valiant.hpp"

namespace sor {
namespace {

// ---------------------------------------------------------------------
// Lemma 5.15 (demand-sum): routing D1 + D2 optimally is never worse than
// superimposing the two separately-optimal routings — and never better
// than half the max of the parts.
// ---------------------------------------------------------------------
TEST(DemandSum, RestrictedOptimumIsSubadditive) {
  const std::uint32_t dim = 4;
  const Graph g = make_hypercube(dim);
  const ValiantHypercube routing(g, dim);
  Rng rng(1);
  const Demand d1 = random_permutation_demand(g, rng);
  const Demand d2 = random_permutation_demand(g, rng);
  const Demand sum = Demand::sum(d1, d2);

  SampleOptions sample;
  sample.k = 5;
  const PathSystem ps = sample_path_system_for_demand(routing, sum, sample, 2);
  RouterOptions exact;
  exact.backend = LpBackend::kExact;
  const SemiObliviousRouter router(g, ps, exact);

  const double c1 = router.route_fractional(d1).congestion;
  const double c2 = router.route_fractional(d2).congestion;
  const double c_sum = router.route_fractional(sum).congestion;
  EXPECT_LE(c_sum, c1 + c2 + 1e-6);              // Lemma 5.15 direction
  EXPECT_GE(c_sum + 1e-6, std::max(c1, c2));     // monotonicity in demand
}

// ---------------------------------------------------------------------
// Lemma 5.16 (bounded congestion): for any routing of D,
//   |D| · min_hops / (m-scaled volume) <= cong <= |D| (simple paths).
// We check the implementable forms: cong >= total/(volume) average bound
// and cong <= |D| on unit-capacity graphs.
// ---------------------------------------------------------------------
TEST(BoundedCongestion, TrivialBoundsHold) {
  const Graph g = make_grid(4, 4);
  const ValiantHypercube* unused = nullptr;
  (void)unused;
  Rng rng(3);
  const Demand d = uniform_random_pairs(g, 12, 1.0, rng);

  // Route each commodity on a BFS path (any routing works for the bound).
  EdgeLoad load = zero_load(g);
  double min_hop_volume = 0;
  for (const Commodity& c : d.commodities()) {
    const Path p = shortest_path_hops(g, c.src, c.dst);
    add_path_load(p, c.amount, load);
    min_hop_volume += c.amount * static_cast<double>(p.hops());
  }
  const double congestion = max_congestion(g, load);
  // Upper: every pair's demand crosses an edge at most once (simple
  // paths), so congestion <= |D| on unit capacities.
  EXPECT_LE(congestion, d.total() + 1e-9);
  // Lower: max >= average = total load volume / total capacity.
  double capacity = 0;
  for (const Edge& e : g.edges()) capacity += e.capacity;
  EXPECT_GE(congestion + 1e-9, min_hop_volume / capacity);
}

// ---------------------------------------------------------------------
// Lemma 5.17 mechanics: congestion is 1-homogeneous in the demand, so
// scaling a demand to polynomial range and back is lossless.
// ---------------------------------------------------------------------
TEST(PolySufficiency, CongestionIsHomogeneous) {
  const std::uint32_t dim = 4;
  const Graph g = make_hypercube(dim);
  const ValiantHypercube routing(g, dim);
  Rng rng(5);
  Demand d = random_permutation_demand(g, rng);
  SampleOptions sample;
  sample.k = 4;
  const PathSystem ps = sample_path_system_for_demand(routing, d, sample, 6);
  RouterOptions exact;
  exact.backend = LpBackend::kExact;
  const SemiObliviousRouter router(g, ps, exact);

  const double base = router.route_fractional(d).congestion;
  for (const double scale : {0.125, 3.0, 1000.0}) {
    Demand scaled = d;
    scaled.scale(scale);
    const double c = router.route_fractional(scaled).congestion;
    EXPECT_NEAR(c, base * scale, base * scale * 1e-6 + 1e-9)
        << "scale " << scale;
  }
}

// ---------------------------------------------------------------------
// The §5.4 split step: any demand decomposes into a small part plus a
// poly-bounded part whose routings superimpose.
// ---------------------------------------------------------------------
TEST(PolySufficiency, SplitAndRecombine) {
  const Graph g = make_grid(4, 4);
  Rng rng(7);
  Demand d;
  d.add(0, 15, 1e-7);  // tiny entry
  d.add(3, 12, 2.0);   // normal entry
  // Split at threshold: big carries entries >= 1e-3, small the rest.
  Demand big, small;
  for (const auto& [pair, value] : d.entries()) {
    (value >= 1e-3 ? big : small).add(pair.a, pair.b, value);
  }
  EXPECT_DOUBLE_EQ(Demand::sum(big, small).total(), d.total());
  // Routing the small part anywhere adds at most its size to congestion.
  EXPECT_LE(small.total(), 1e-6);
}

}  // namespace
}  // namespace sor
