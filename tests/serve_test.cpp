// Unit + concurrency tests for src/serve: RouteSnapshot build/lookup
// semantics, content-determined serialization, RouteService publish/
// lookup/ingestion, controller integration (one snapshot per epoch,
// digest neutrality, demand-update folding), the end-to-end byte-identity
// contract against route_fractional, and the snapshot-swap stress runs
// the TSan build (-DSOR_SANITIZE=thread) checks for races and torn
// tables.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "demand/demand.hpp"
#include "engine/replay.hpp"
#include "graph/generators.hpp"
#include "graph/path.hpp"
#include "serve/loadgen.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"

namespace sor::serve {
namespace {

Path ring_path(const Graph& g, std::initializer_list<Vertex> vertices) {
  return path_from_vertices(g, std::vector<Vertex>(vertices));
}

// A small hand-built routing table on C6: pair {1,4} split across the two
// arcs, pair {0,2} on a single path plus a zero-fraction row that build()
// must drop.
SplitFractions ring_split(const Graph& g) {
  SplitFractions split;
  split[VertexPair::canonical(1, 4)][ring_path(g, {1, 2, 3, 4})] = 0.75;
  split[VertexPair::canonical(1, 4)][ring_path(g, {1, 0, 5, 4})] = 0.25;
  split[VertexPair::canonical(0, 2)][ring_path(g, {0, 1, 2})] = 1.0;
  split[VertexPair::canonical(0, 2)][ring_path(g, {0, 5, 4, 3, 2})] = 0.0;
  return split;
}

TEST(Snapshot, LookupAnswersBothOrientationsAndMisses) {
  const Graph g = make_ring(6);
  const RouteSnapshot snap = RouteSnapshot::build(7, ring_split(g));
  EXPECT_EQ(snap.epoch(), 7u);
  EXPECT_EQ(snap.num_pairs(), 2u);
  // The zero-fraction {0,2} row is dropped.
  EXPECT_EQ(snap.num_paths(), 3u);

  const LookupResult forward = snap.lookup(1, 4);
  ASSERT_TRUE(forward.found);
  EXPECT_FALSE(forward.reverse);
  EXPECT_EQ(forward.epoch, 7u);
  ASSERT_EQ(forward.paths.size(), 2u);
  // Rows come back in path_lexicographic_less order.
  EXPECT_TRUE(path_lexicographic_less(forward.paths[0].path,
                                      forward.paths[1].path));
  EXPECT_NEAR(forward.fraction_sum(), 1.0, 1e-12);

  const LookupResult backward = snap.lookup(4, 1);
  ASSERT_TRUE(backward.found);
  EXPECT_TRUE(backward.reverse);
  ASSERT_EQ(backward.paths.size(), 2u);
  for (const Path& p : backward.oriented_paths()) {
    EXPECT_EQ(p.src, 4u);
    EXPECT_EQ(p.dst, 1u);
  }

  EXPECT_FALSE(snap.lookup(0, 3).found);
  // Out-of-range vertices miss safely rather than crash.
  EXPECT_FALSE(snap.lookup(100, 101).found);
}

TEST(Snapshot, SerializeIsContentDeterminedNotInsertionOrdered) {
  const Graph g = make_ring(6);
  const SplitFractions forward_order = ring_split(g);
  // Same content, reversed insertion order at both map levels.
  SplitFractions reverse_order;
  reverse_order[VertexPair::canonical(0, 2)][ring_path(g, {0, 5, 4, 3, 2})] =
      0.0;
  reverse_order[VertexPair::canonical(0, 2)][ring_path(g, {0, 1, 2})] = 1.0;
  reverse_order[VertexPair::canonical(1, 4)][ring_path(g, {1, 0, 5, 4})] =
      0.25;
  reverse_order[VertexPair::canonical(1, 4)][ring_path(g, {1, 2, 3, 4})] =
      0.75;

  const RouteSnapshot a = RouteSnapshot::build(3, forward_order);
  const RouteSnapshot b = RouteSnapshot::build(3, reverse_order);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_EQ(a.digest(), b.digest());

  // Any content change shows up in the digest.
  SplitFractions changed = forward_order;
  changed[VertexPair::canonical(1, 4)][ring_path(g, {1, 2, 3, 4})] = 0.7500001;
  EXPECT_NE(RouteSnapshot::build(3, changed).digest(), a.digest());
}

TEST(Service, LookupBeforeFirstPublishIsAMiss) {
  RouteService service;
  EXPECT_EQ(service.snapshot(), nullptr);
  const RouteService::Answer answer = service.lookup(0, 1);
  EXPECT_EQ(answer.snapshot, nullptr);
  EXPECT_FALSE(answer.result.found);
  EXPECT_EQ(service.lookups(), 1u);
  EXPECT_EQ(service.misses(), 1u);
}

TEST(Service, PublishSwapsTheAnsweringSnapshot) {
  const Graph g = make_ring(6);
  RouteService service;
  service.publish(std::make_shared<const RouteSnapshot>(
      RouteSnapshot::build(1, ring_split(g))));
  const RouteService::Answer first = service.lookup(1, 4);
  ASSERT_TRUE(first.result.found);
  EXPECT_EQ(first.result.epoch, 1u);

  // Swap in a new epoch; subsequent lookups answer from it, while the
  // old answer's guard keeps the retired snapshot's spans alive.
  service.publish(std::make_shared<const RouteSnapshot>(
      RouteSnapshot::build(2, ring_split(g))));
  const RouteService::Answer second = service.lookup(1, 4);
  ASSERT_TRUE(second.result.found);
  EXPECT_EQ(second.result.epoch, 2u);
  EXPECT_EQ(first.result.epoch, 1u);
  EXPECT_NEAR(first.result.fraction_sum(), 1.0, 1e-12);

  EXPECT_EQ(service.publishes(), 2u);
  EXPECT_EQ(service.lookups(), 2u);
  EXPECT_EQ(service.misses(), 0u);
}

TEST(Service, IngestionDrainsTheWholeBatchExactlyOnce) {
  RouteService service;
  service.enqueue_update({0, 1, 2.0});
  service.enqueue_update({2, 3, 0.5});
  service.enqueue_update({1, 4, 1.25});
  EXPECT_EQ(service.updates_enqueued(), 3u);
  EXPECT_EQ(service.updates_drained(), 0u);

  const std::vector<DemandUpdate> batch = service.drain_updates();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].src, 0u);
  EXPECT_EQ(batch[0].dst, 1u);
  EXPECT_EQ(batch[0].amount, 2.0);
  EXPECT_EQ(batch[2].amount, 1.25);
  EXPECT_EQ(service.updates_drained(), 3u);
  EXPECT_TRUE(service.drain_updates().empty());
  EXPECT_EQ(service.updates_drained(), 3u);
}

engine::EngineRunConfig serve_config() {
  engine::EngineRunConfig config;
  config.topology = "wan:abilene";
  config.source = "sp";  // fast, deterministic path source for unit tests
  config.k = 3;
  config.seed = 29;
  config.trace.num_epochs = 6;
  config.stream.total = 32.0;
  return config;
}

TEST(ControllerServe, PublishesOneSnapshotPerEpoch) {
  engine::EngineRunConfig config = serve_config();
  RouteService service;
  config.engine.service = &service;
  const engine::EngineRunOutput out = engine::run_from_config(config);
  EXPECT_EQ(service.publishes(), out.result.epochs.size());
  const std::shared_ptr<const RouteSnapshot> snap = service.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), out.result.epochs.back().epoch);
  EXPECT_GT(snap->num_pairs(), 0u);
  EXPECT_GT(snap->num_paths(), 0u);
}

TEST(ControllerServe, AttachedServiceKeepsTheDigestByteIdentical) {
  // Publishing is observation only: a run with a service attached (and no
  // enqueued updates) must replay-digest byte-identically to one without.
  const engine::EngineRunConfig plain = serve_config();
  const engine::EngineRunOutput without = engine::run_from_config(plain);

  engine::EngineRunConfig with_service = serve_config();
  RouteService service;
  with_service.engine.service = &service;
  const engine::EngineRunOutput with = engine::run_from_config(with_service);

  EXPECT_EQ(engine::digest_json(with.record, with.result).dump(2),
            engine::digest_json(without.record, without.result).dump(2));
}

TEST(ControllerServe, DrainedUpdatesFoldIntoTheRealizedMatrix) {
  const engine::EngineRunOutput base =
      engine::run_from_config(serve_config());

  engine::EngineRunConfig config = serve_config();
  RouteService service;
  config.engine.service = &service;
  service.enqueue_update({0, 1, 5.0});
  const engine::EngineRunOutput updated = engine::run_from_config(config);

  EXPECT_EQ(service.updates_drained(), 1u);
  ASSERT_FALSE(updated.result.epochs.empty());
  // The pre-run update lands in epoch 0's realized matrix and nowhere
  // else (nothing further was enqueued).
  EXPECT_NEAR(updated.result.epochs[0].realized_total,
              base.result.epochs[0].realized_total + 5.0, 1e-9);
  for (std::size_t t = 1; t < base.result.epochs.size(); ++t) {
    EXPECT_EQ(updated.result.epochs[t].realized_total,
              base.result.epochs[t].realized_total);
  }
}

TEST(Identity, PublishedSnapshotMatchesRouteFractional) {
  const engine::EngineRunConfig config = serve_config();
  const Graph g = engine::build_topology(config.topology);
  const PathSystem system = engine::build_path_system(g, config);
  const Demand demand =
      engine::DemandStream(g, config.stream, config.seed).at_epoch(0);
  EXPECT_TRUE(snapshot_matches_route_fractional(g, system, demand,
                                                config.engine.epsilon));
}

ServeLoadReport run_small_load(std::size_t update_every) {
  const engine::EngineRunConfig config = serve_config();
  const Graph g = engine::build_topology(config.topology);
  const PathSystem system = engine::build_path_system(g, config);
  const engine::EventTrace trace =
      engine::generate_trace(g, config.trace, config.seed);
  ServeLoadOptions load;
  load.readers = 4;
  load.min_lookups_per_reader = 500;
  load.update_every = update_every;
  return run_serve_load(g, system, trace, config.stream, config.engine,
                        config.seed, load);
}

TEST(Concurrency, ReadersNeverSeeATornTable) {
  const ServeLoadReport report = run_small_load(/*update_every=*/128);
  EXPECT_EQ(report.torn, 0u);
  EXPECT_EQ(report.snapshots_published, report.result.epochs.size());
  EXPECT_GE(report.lookups, 4u * 500u);
  EXPECT_EQ(report.hits + report.misses, report.lookups);
  ASSERT_NE(report.final_snapshot, nullptr);
  EXPECT_EQ(report.final_snapshot->epoch(),
            report.result.epochs.back().epoch);
  // Every drained update was applied before its epoch's solve; anything
  // enqueued after the final drain legitimately stays queued.
  EXPECT_LE(report.updates_drained, report.updates_enqueued);
}

// FNV-1a over an answer's deterministic content; the aggregation-identity
// test folds these per-query digests in query order.
std::uint64_t answer_digest(std::uint64_t h, Vertex s, Vertex t,
                            const LookupResult& r) {
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(s);
  mix(t);
  mix(r.found ? 1 : 0);
  if (!r.found) return h;
  mix(r.epoch);
  for (const ServedPath& row : r.paths) {
    mix(std::bit_cast<std::uint64_t>(row.fraction));
    mix(row.path.src);
    mix(row.path.dst);
    for (const EdgeId e : row.path.edges) mix(e);
  }
  return h;
}

TEST(Concurrency, AggregatedLookupsMatchSingleThreadByteForByte) {
  // The same deterministic query list, answered (a) sequentially and
  // (b) striped across 4 threads with per-stripe digests combined in
  // stripe order, must produce identical bytes — serving answers are a
  // pure function of the snapshot, not of thread placement.
  const ServeLoadReport report = run_small_load(/*update_every=*/0);
  ASSERT_NE(report.final_snapshot, nullptr);
  const RouteSnapshot& snap = *report.final_snapshot;

  const engine::EngineRunConfig config = serve_config();
  const Graph g = engine::build_topology(config.topology);
  const PathSystem system = engine::build_path_system(g, config);
  std::vector<std::pair<Vertex, Vertex>> queries;
  for (std::size_t rep = 0; rep < 50; ++rep) {
    for (const VertexPair& pair : system.pairs()) {
      queries.emplace_back(pair.a, pair.b);
      queries.emplace_back(pair.b, pair.a);
    }
  }

  constexpr std::size_t kThreads = 4;
  const auto stripe_digest = [&](std::size_t stripe) {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = stripe; i < queries.size(); i += kThreads) {
      h = answer_digest(h, queries[i].first, queries[i].second,
                        snap.lookup(queries[i].first, queries[i].second));
    }
    return h;
  };

  std::vector<std::uint64_t> sequential(kThreads);
  for (std::size_t s = 0; s < kThreads; ++s) sequential[s] = stripe_digest(s);

  std::vector<std::uint64_t> threaded(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t s = 0; s < kThreads; ++s) {
      workers.emplace_back([&, s] { threaded[s] = stripe_digest(s); });
    }
    for (std::thread& w : workers) w.join();
  }
  EXPECT_EQ(threaded, sequential);
}

TEST(Concurrency, RawServiceStressPublishLookupIngest) {
  // Pure RouteService stress with every API hammered from its own
  // threads — the TSan build asserts the publish/lookup/ingest paths are
  // race-free; release builds still check the counters reconcile.
  const Graph g = make_ring(6);
  RouteService service;
  std::atomic<bool> done{false};
  constexpr std::uint64_t kPublishes = 200;

  std::thread publisher([&] {
    for (std::uint64_t e = 0; e < kPublishes; ++e) {
      service.publish(std::make_shared<const RouteSnapshot>(
          RouteSnapshot::build(e, ring_split(g))));
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> workers;
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&] {
      std::uint64_t answered = 0;
      while (!done.load(std::memory_order_acquire) || answered < 100) {
        const RouteService::Answer answer = service.lookup(1, 4);
        if (answer.result.found) {
          ASSERT_LT(answer.result.epoch, kPublishes);
          ASSERT_EQ(answer.result.paths.size(), 2u);
        }
        ++answered;
      }
    });
  }
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < 500; ++i) {
        service.enqueue_update(
            {static_cast<Vertex>(w), static_cast<Vertex>(3 + i % 2), 0.25});
      }
    });
  }
  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)service.drain_updates();
    }
  });

  publisher.join();
  for (std::thread& w : workers) w.join();
  drainer.join();

  EXPECT_EQ(service.publishes(), kPublishes);
  EXPECT_EQ(service.updates_enqueued(), 1000u);
  const std::vector<DemandUpdate> rest = service.drain_updates();
  EXPECT_EQ(service.updates_drained(), service.updates_enqueued());
  EXPECT_LE(rest.size(), 1000u);
  ASSERT_NE(service.snapshot(), nullptr);
  EXPECT_EQ(service.snapshot()->epoch(), kPublishes - 1);
}

}  // namespace
}  // namespace sor::serve
