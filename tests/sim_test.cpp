// Tests for the store-and-forward packet simulator: hand-checkable
// schedules and the O(congestion + dilation) makespan property.

#include <gtest/gtest.h>

#include "core/router.hpp"
#include "core/sampler.hpp"
#include "demand/generators.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "oblivious/valiant.hpp"
#include "sim/packet_sim.hpp"

namespace sor {
namespace {

TEST(Sim, NoPackets) {
  const Graph g = make_grid(2, 2);
  Rng rng(1);
  const SimResult r = simulate_store_and_forward(g, {}, rng);
  EXPECT_EQ(r.makespan, 0u);
}

TEST(Sim, SinglePacketTakesItsHopCount) {
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(1, 2);
  const EdgeId e2 = g.add_edge(2, 3);
  const std::vector<Path> packets{Path{0, 3, {e0, e1, e2}}};
  Rng rng(2);
  const SimResult r = simulate_store_and_forward(g, packets, rng);
  EXPECT_EQ(r.makespan, 3u);
  EXPECT_EQ(r.dilation, 3u);
  EXPECT_EQ(r.max_edge_packets, 1u);
}

TEST(Sim, ContentionSerializesOnSharedEdge) {
  // 4 packets over the same unit edge: one per step → makespan 4.
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  const std::vector<Path> packets(4, Path{0, 1, {e}});
  Rng rng(3);
  const SimResult r = simulate_store_and_forward(g, packets, rng);
  EXPECT_EQ(r.makespan, 4u);
  EXPECT_EQ(r.max_edge_packets, 4u);
}

TEST(Sim, CapacityTwoHalvesTheSerialization) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 2.0);
  const std::vector<Path> packets(4, Path{0, 1, {e}});
  Rng rng(4);
  const SimResult r = simulate_store_and_forward(g, packets, rng);
  EXPECT_EQ(r.makespan, 2u);
}

TEST(Sim, EmptyPathPacketsArriveInstantly) {
  const Graph g = make_grid(2, 2);
  const std::vector<Path> packets{Path{0, 0, {}}, Path{1, 1, {}}};
  Rng rng(5);
  const SimResult r = simulate_store_and_forward(g, packets, rng);
  EXPECT_EQ(r.makespan, 0u);
}

TEST(Sim, MakespanBoundedByCongestionPlusDilationRegime) {
  // LMR-style bound check: makespan should be within a small constant of
  // C + D for a real routed workload.
  const std::uint32_t dim = 5;
  const Graph g = make_hypercube(dim);
  const ValiantHypercube routing(g, dim);
  Rng rng(6);
  const Demand d = random_permutation_demand(g, rng);
  SampleOptions sample;
  sample.k = 6;
  const PathSystem ps = sample_path_system_for_demand(routing, d, sample, 7);
  const SemiObliviousRouter router(g, ps);
  Rng round_rng(8);
  const IntegralRoute route = router.route_integral(d, round_rng);

  Rng sim_rng(9);
  const SimResult sim =
      simulate_store_and_forward(g, route.packet_paths, sim_rng);
  const double cd = static_cast<double>(sim.max_edge_packets) +
                    static_cast<double>(sim.dilation);
  EXPECT_GE(static_cast<double>(sim.makespan) + 1e-9,
            std::max<double>(sim.dilation, 1.0));
  EXPECT_LE(static_cast<double>(sim.makespan), 4.0 * cd);
}

TEST(Sim, LowerBoundsHold) {
  // makespan >= dilation and >= per-edge packet count / rate.
  Graph g(3);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(1, 2);
  std::vector<Path> packets;
  for (int i = 0; i < 5; ++i) packets.push_back(Path{0, 2, {e0, e1}});
  Rng rng(10);
  const SimResult r = simulate_store_and_forward(g, packets, rng);
  EXPECT_GE(r.makespan, 5u);      // 5 packets through a unit edge
  EXPECT_GE(r.makespan, 2u);      // dilation
  EXPECT_LE(r.makespan, 5u + 2u); // pipelining
}

TEST(Sim, DeterministicGivenRng) {
  const Graph g = make_grid(3, 3);
  std::vector<Path> packets;
  for (int i = 0; i < 6; ++i) {
    packets.push_back(shortest_path_hops(g, 0, 8));
  }
  Rng a(11), b(11);
  EXPECT_EQ(simulate_store_and_forward(g, packets, a).makespan,
            simulate_store_and_forward(g, packets, b).makespan);
}

}  // namespace
}  // namespace sor
