// Cross-solver property tests: the strongest correctness evidence in the
// suite. On graphs small enough to ENUMERATE every simple path, the
// restricted LP over the full path set must equal the Garg–Könemann MCF
// optimum (two completely independent solver stacks). Plus randomized
// simplex properties (feasibility, optimality versus sampled feasible
// points) and MWU/exact agreement on random instances.

#include <gtest/gtest.h>

#include <functional>

#include "demand/generators.hpp"
#include "flow/mcf.hpp"
#include "graph/generators.hpp"
#include "lp/path_lp.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace sor {
namespace {

/// All simple s→t paths by DFS (graphs here are tiny).
std::vector<Path> enumerate_simple_paths(const Graph& g, Vertex s, Vertex t,
                                         std::size_t cap = 5000) {
  std::vector<Path> out;
  std::vector<bool> visited(g.num_vertices(), false);
  Path current{s, t, {}};
  std::function<void(Vertex)> dfs = [&](Vertex at) {
    if (out.size() >= cap) return;
    if (at == t) {
      out.push_back(current);
      return;
    }
    visited[at] = true;
    for (const HalfEdge& h : g.neighbors(at)) {
      if (visited[h.to]) continue;
      current.edges.push_back(h.id);
      dfs(h.to);
      current.edges.pop_back();
    }
    visited[at] = false;
  };
  dfs(s);
  return out;
}

class FullPathLpVsMcf : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FullPathLpVsMcf, AgreeOnRandomSmallInstances) {
  const std::uint64_t seed = GetParam();
  // Small random graph + random demand.
  const Graph g = make_erdos_renyi(8, 0.45, seed);
  Rng rng(seed * 13 + 1);
  Demand demand;
  for (int i = 0; i < 4; ++i) {
    Vertex a = 0, b = 0;
    while (a == b) {
      a = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
      b = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
    }
    demand.add(a, b, 1.0 + rng.next_double() * 3.0);
  }

  // Stack 1: restricted exact LP over EVERY simple path.
  RestrictedProblem problem;
  problem.graph = &g;
  for (const Commodity& c : demand.commodities()) {
    RestrictedCommodity rc;
    rc.demand = c.amount;
    rc.candidates = enumerate_simple_paths(g, c.src, c.dst);
    ASSERT_FALSE(rc.candidates.empty());
    problem.commodities.push_back(std::move(rc));
  }
  const RestrictedSolution exact = solve_restricted_exact(problem);

  // Stack 2: Garg–Könemann concurrent flow.
  McfOptions options;
  options.epsilon = 0.03;
  const McfResult mcf =
      min_congestion_routing(g, demand.commodities(), options);

  // The full-path LP IS the true OPT; the MCF brackets it within 1±ε.
  EXPECT_LE(mcf.lower_bound, exact.congestion * 1.001 + 1e-9);
  EXPECT_GE(mcf.congestion * 1.001 + 1e-9, exact.congestion);
  EXPECT_LE(mcf.congestion, exact.congestion * (1 + options.epsilon) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullPathLpVsMcf,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class RandomLpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLpProperty, SimplexBeatsSampledFeasiblePoints) {
  // Construct a random feasible bounded LP: A random nonnegative, b
  // chosen so x0 is strictly feasible; minimize a random c with an added
  // "box" row keeping it bounded. The simplex optimum must be feasible
  // and no worse than the value at any sampled feasible point.
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 4;
  const std::size_t m = 5;

  LpProblem lp;
  lp.objective.resize(n);
  for (double& c : lp.objective) c = rng.next_double(-1.0, 1.0);
  std::vector<double> x0(n);
  for (double& x : x0) x = rng.next_double(0.2, 2.0);

  for (std::size_t r = 0; r < m; ++r) {
    LpConstraint row;
    row.coefficients.resize(n);
    double lhs_at_x0 = 0;
    for (std::size_t j = 0; j < n; ++j) {
      row.coefficients[j] = rng.next_double(0.0, 1.0);
      lhs_at_x0 += row.coefficients[j] * x0[j];
    }
    row.sense = ConstraintSense::kLe;
    row.rhs = lhs_at_x0 + rng.next_double(0.1, 1.0);
    lp.constraints.push_back(std::move(row));
  }
  {
    // Bounding box: Σ x <= big.
    LpConstraint box;
    box.coefficients.assign(n, 1.0);
    box.sense = ConstraintSense::kLe;
    box.rhs = 50.0;
    lp.constraints.push_back(std::move(box));
  }

  const LpSolution solution = solve_lp(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal) << "seed " << seed;

  // Feasibility of the simplex solution.
  for (const LpConstraint& row : lp.constraints) {
    double lhs = 0;
    for (std::size_t j = 0; j < n; ++j) {
      lhs += row.coefficients[j] * solution.x[j];
      EXPECT_GE(solution.x[j], -1e-9);
    }
    EXPECT_LE(lhs, row.rhs + 1e-7);
  }

  // Optimality against random feasible points (rejection sampling).
  int checked = 0;
  for (int trial = 0; trial < 3000 && checked < 50; ++trial) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.next_double(0.0, 3.0);
    bool feasible = true;
    for (const LpConstraint& row : lp.constraints) {
      double lhs = 0;
      for (std::size_t j = 0; j < n; ++j) lhs += row.coefficients[j] * x[j];
      if (lhs > row.rhs) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    ++checked;
    double value = 0;
    for (std::size_t j = 0; j < n; ++j) value += lp.objective[j] * x[j];
    EXPECT_GE(value + 1e-7, solution.objective_value) << "seed " << seed;
  }
  EXPECT_GT(checked, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpProperty,
                         ::testing::Values(10, 11, 12, 13, 14, 15, 16, 17));

class MwuExactAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MwuExactAgreement, RandomRestrictedInstances) {
  const std::uint64_t seed = GetParam();
  const Graph g = make_erdos_renyi(10, 0.4, seed + 100);
  Rng rng(seed);

  RestrictedProblem problem;
  problem.graph = &g;
  for (int j = 0; j < 5; ++j) {
    Vertex a = 0, b = 0;
    while (a == b) {
      a = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
      b = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
    }
    auto paths = enumerate_simple_paths(g, a, b, 6);
    if (paths.empty()) continue;
    RestrictedCommodity rc;
    rc.demand = 0.5 + rng.next_double() * 2.0;
    rc.candidates = std::move(paths);
    problem.commodities.push_back(std::move(rc));
  }
  if (problem.commodities.empty()) GTEST_SKIP();

  const RestrictedSolution exact = solve_restricted_exact(problem);
  RestrictedMwuOptions options;
  options.epsilon = 0.04;
  const RestrictedSolution mwu = solve_restricted_mwu(problem, options);
  EXPECT_GE(mwu.congestion + 1e-9, exact.congestion * 0.999);
  EXPECT_LE(mwu.congestion, exact.congestion * 1.05 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwuExactAgreement,
                         ::testing::Values(20, 21, 22, 23, 24, 25));

}  // namespace
}  // namespace sor
