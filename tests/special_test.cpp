// Tests for the special-demand machinery (Definition 5.5 / Lemma 5.9):
// the specialness predicate, the power-of-two bucketing reduction, and
// its end-to-end use for routing general demands. Plus demand file I/O
// and the new topology generators.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/router.hpp"
#include "core/sampler.hpp"
#include "core/special.hpp"
#include "demand/generators.hpp"
#include "demand/io.hpp"
#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "oblivious/racke_routing.hpp"
#include "oblivious/valiant.hpp"

namespace sor {
namespace {

PathSystem two_pair_system(const Graph& g) {
  PathSystem ps;
  ps.add(shortest_path_hops(g, 0, 5));
  ps.add(shortest_path_hops(g, 0, 5));  // duplicate: |P| = 2 for (0,5)
  ps.add(shortest_path_hops(g, 1, 6));  // |P| = 1 for (1,6)
  return ps;
}

TEST(SpecialDemand, PredicateChecksUniformRatio) {
  const Graph g = make_grid(3, 3);
  const PathSystem ps = two_pair_system(g);
  Demand special;
  special.add(0, 5, 2.0);  // ratio 2/2 = 1
  special.add(1, 6, 1.0);  // ratio 1/1 = 1
  EXPECT_TRUE(is_special_demand(special, ps));

  Demand not_special;
  not_special.add(0, 5, 2.0);  // ratio 1
  not_special.add(1, 6, 3.0);  // ratio 3
  EXPECT_FALSE(is_special_demand(not_special, ps));

  EXPECT_TRUE(is_special_demand(Demand{}, ps));  // vacuous
}

TEST(SpecialDemand, PredicateThrowsOnUncoveredPair) {
  const Graph g = make_grid(3, 3);
  const PathSystem ps = two_pair_system(g);
  Demand d;
  d.add(2, 7, 1.0);  // not in the system
  EXPECT_THROW(is_special_demand(d, ps), CheckError);
}

TEST(SpecialBucketing, SplitsByPowerOfTwoRatios) {
  const Graph g = make_grid(3, 3);
  const PathSystem ps = two_pair_system(g);
  Demand d;
  d.add(0, 5, 1.0);  // ratio 0.5 → bucket [-1], ceiling 1
  d.add(1, 6, 5.0);  // ratio 5   → bucket [2],  ceiling 8
  const auto buckets = split_into_special(d, ps);
  ASSERT_EQ(buckets.size(), 2u);
  for (const SpecialBucket& bucket : buckets) {
    EXPECT_TRUE(is_special_demand(bucket.demand, ps));
    // Rounded up by at most 2×.
    for (const Commodity& c : bucket.demand.commodities()) {
      const double original = d.at(c.src, c.dst);
      EXPECT_GE(c.amount + 1e-9, original);
      EXPECT_LE(c.amount, 2 * original + 1e-9);
    }
  }
}

TEST(SpecialBucketing, SameRatioPairsShareOneBucket) {
  const Graph g = make_grid(3, 3);
  PathSystem ps;
  ps.add(shortest_path_hops(g, 0, 8));
  ps.add(shortest_path_hops(g, 2, 6));
  Demand d;
  d.add(0, 8, 3.0);
  d.add(2, 6, 3.0);
  const auto buckets = split_into_special(d, ps);
  EXPECT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].demand.support_size(), 2u);
}

TEST(SpecialBucketing, BucketCountIsLogarithmic) {
  // Ratios spanning 2^0..2^10 → at most 11-ish buckets.
  const Graph g = make_complete(24);
  PathSystem ps;
  Demand d;
  for (Vertex v = 1; v < 12; ++v) {
    ps.add(shortest_path_hops(g, 0, v));
    d.add(0, v, std::ldexp(1.0, static_cast<int>(v % 11)));
  }
  const auto buckets = split_into_special(d, ps);
  EXPECT_LE(buckets.size(), 11u);
  EXPECT_GE(buckets.size(), 2u);
}

TEST(SpecialBucketing, RouteViaBucketsCoversDemandWithBoundedLoss) {
  // End-to-end Lemma 5.9: route each bucket with the LP; the combined
  // load routes a dominating demand, with congestion <= Σ buckets <=
  // (#buckets)·max-bucket — and since rounding is <= 2×, the whole thing
  // is within 2·#buckets of the direct LP.
  const std::uint32_t d = 4;
  const Graph g = make_hypercube(d);
  const ValiantHypercube routing(g, d);
  Rng rng(3);
  Demand demand;
  // Wildly varying entries to force several buckets.
  for (int i = 0; i < 10; ++i) {
    Vertex a = 0, b = 0;
    while (a == b) {
      a = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
      b = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
    }
    demand.add(a, b, std::ldexp(1.0, i % 5));
  }
  SampleOptions sample;
  sample.k = 4;
  const PathSystem ps =
      sample_path_system_for_demand(routing, demand, sample, 5);

  RouterOptions opts;
  opts.backend = LpBackend::kExact;
  const SemiObliviousRouter router(g, ps, opts);
  const double direct = router.route_fractional(demand).congestion;

  std::size_t buckets_seen = 0;
  const EdgeLoad combined = route_via_special_buckets(
      g, demand, ps, [&](const SpecialBucket& bucket) {
        ++buckets_seen;
        return router.route_fractional(bucket.demand).load;
      });
  const double bucketed = max_congestion(g, combined);
  EXPECT_GE(buckets_seen, 2u);
  EXPECT_GE(bucketed + 1e-9, direct);  // routes MORE demand
  EXPECT_LE(bucketed, 2.0 * static_cast<double>(buckets_seen) * direct + 1e-9);
}

TEST(DemandIo, RoundTrips) {
  Demand d;
  d.add(3, 7, 1.5);
  d.add(0, 2, 4.0);
  std::stringstream buffer;
  write_demand(d, buffer);
  const Demand loaded = read_demand(buffer);
  EXPECT_EQ(loaded.support_size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.at(3, 7), 1.5);
  EXPECT_DOUBLE_EQ(loaded.at(0, 2), 4.0);
}

TEST(DemandIo, SkipsCommentsRejectsGarbage) {
  std::stringstream good("# header\n1 2 3.5\n\n4 5 1\n");
  const Demand d = read_demand(good);
  EXPECT_EQ(d.support_size(), 2u);
  std::stringstream bad("1 2\n");
  EXPECT_THROW(read_demand(bad), CheckError);
}

TEST(Generators, Ring) {
  const Graph g = make_ring(8);
  EXPECT_EQ(g.num_edges(), 8u);
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(hop_diameter(g), 4u);
}

TEST(Generators, BinaryTree) {
  const Graph g = make_binary_tree(4);
  EXPECT_EQ(g.num_vertices(), 15u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 2u);   // root
  EXPECT_EQ(g.degree(14), 1u);  // a leaf
  EXPECT_EQ(hop_diameter(g), 6u);
}

TEST(Generators, RandomGeometric) {
  const Graph g = make_random_geometric(50, 0.35, 7);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.num_vertices(), 50u);
  // Deterministic in the seed.
  const Graph h = make_random_geometric(50, 0.35, 7);
  EXPECT_EQ(g.num_edges(), h.num_edges());
}

}  // namespace
}  // namespace sor
