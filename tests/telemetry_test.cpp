// Unit tests for src/telemetry: registry metrics under concurrency, span
// tree nesting (including across thread-pool workers), JSON round-trip,
// and the SOR_TELEMETRY kill switch.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/router.hpp"
#include "demand/demand.hpp"
#include "graph/generators.hpp"
#include "oblivious/shortest_path.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace sor {
namespace {

using telemetry::JsonValue;

// Spans open elsewhere in the test binary would make reset_spans unsafe;
// these tests only run spans they open themselves.

// Recording tests must work regardless of the SOR_TELEMETRY environment
// the suite runs under.
struct ScopedEnable {
  explicit ScopedEnable(bool on = true) : previous(telemetry::enabled()) {
    telemetry::set_enabled(on);
  }
  ~ScopedEnable() { telemetry::set_enabled(previous); }
  bool previous;
};

const telemetry::SpanSnapshot* find_span(
    const std::vector<telemetry::SpanSnapshot>& spans,
    const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(TelemetryCounter, ConcurrentIncrementsLandExactly) {
  const ScopedEnable enable;
  auto& counter = SOR_COUNTER("test/concurrent_counter");
  counter.reset();
  const std::size_t n = 20000;
  parallel_for(n, [&](std::size_t) { counter.add(); });
  EXPECT_EQ(counter.value(), n);

  counter.reset();
  parallel_for(n, [&](std::size_t i) { counter.add(i % 3); });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) expected += i % 3;
  EXPECT_EQ(counter.value(), expected);
}

TEST(TelemetryGauge, LastWriteWins) {
  const ScopedEnable enable;
  auto& gauge = SOR_GAUGE("test/gauge");
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.25);
}

TEST(TelemetryHistogram, ConcurrentObservationsExactCountAndSum) {
  const ScopedEnable enable;
  auto& hist = SOR_HISTOGRAM("test/concurrent_hist", 0.0, 100.0, 10);
  hist.reset();
  const std::size_t n = 20000;
  parallel_for(n, [&](std::size_t i) {
    hist.observe(static_cast<double>(i % 100));
  });
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, n);
  double expected_sum = 0;
  for (std::size_t i = 0; i < n; ++i) expected_sum += static_cast<double>(i % 100);
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 99.0);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
}

TEST(TelemetryHistogram, ClampsOutOfRangeIntoBoundaryBuckets) {
  const ScopedEnable enable;
  auto& hist = SOR_HISTOGRAM("test/clamp_hist", 0.0, 10.0, 10);
  hist.reset();
  hist.observe(-5.0);
  hist.observe(25.0);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.buckets.front(), 1u);
  EXPECT_EQ(snap.buckets.back(), 1u);
  // Exact extrema survive clamping.
  EXPECT_DOUBLE_EQ(snap.min, -5.0);
  EXPECT_DOUBLE_EQ(snap.max, 25.0);
  const StatsSummary s = hist.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.max, 25.0);  // exact, not the bin midpoint
}

TEST(TelemetrySpan, NestsAndAggregates) {
  const ScopedEnable enable;
  telemetry::reset_spans();
  {
    SOR_SPAN("test/outer");
    for (int i = 0; i < 3; ++i) {
      SOR_SPAN("test/inner");
    }
    { SOR_SPAN("test/other"); }
  }
  { SOR_SPAN("test/outer"); }  // second invocation aggregates

  const auto spans = telemetry::snapshot_spans();
  const auto* outer = find_span(spans, "test/outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  ASSERT_EQ(outer->children.size(), 2u);
  const auto* inner = find_span(outer->children, "test/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 3u);
  EXPECT_GE(outer->seconds, 0.0);

  const std::string text = telemetry::span_tree_text();
  EXPECT_NE(text.find("test/outer"), std::string::npos);
  EXPECT_NE(text.find("test/inner"), std::string::npos);
  telemetry::reset_spans();
}

TEST(TelemetrySpan, PropagatesAcrossPoolWorkers) {
  const ScopedEnable enable;
  telemetry::reset_spans();
  const std::size_t n = 64;
  {
    SOR_SPAN("test/parallel_outer");
    parallel_for(n, [&](std::size_t) { SOR_SPAN("test/parallel_inner"); });
  }
  const auto spans = telemetry::snapshot_spans();
  const auto* outer = find_span(spans, "test/parallel_outer");
  ASSERT_NE(outer, nullptr);
  // The inner span must appear as a child of the outer one, never as a
  // top-level root, regardless of which pool thread ran it.
  EXPECT_EQ(find_span(spans, "test/parallel_inner"), nullptr);
  const auto* inner = find_span(outer->children, "test/parallel_inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, n);
  telemetry::reset_spans();
}

TEST(TelemetryJson, RoundTripsThroughParser) {
  JsonValue doc = JsonValue::object();
  doc.set("string", "hello \"world\"\n");
  doc.set("int", 42);
  doc.set("float", 2.625);
  doc.set("negative", -17.5);
  doc.set("yes", true);
  doc.set("no", false);
  doc.set("nothing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push(1);
  arr.push("two");
  arr.push(JsonValue::array());
  doc.set("arr", std::move(arr));
  JsonValue nested = JsonValue::object();
  nested.set("deep", 1e-9);
  doc.set("nested", std::move(nested));

  for (int indent : {0, 2}) {
    const JsonValue parsed = JsonValue::parse(doc.dump(indent));
    EXPECT_EQ(parsed.at("string").as_string(), "hello \"world\"\n");
    EXPECT_DOUBLE_EQ(parsed.at("int").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(parsed.at("float").as_number(), 2.625);
    EXPECT_DOUBLE_EQ(parsed.at("negative").as_number(), -17.5);
    EXPECT_TRUE(parsed.at("yes").as_bool());
    EXPECT_FALSE(parsed.at("no").as_bool());
    EXPECT_TRUE(parsed.at("nothing").is_null());
    EXPECT_EQ(parsed.at("arr").size(), 3u);
    EXPECT_EQ(parsed.at("arr").at(std::size_t{1}).as_string(), "two");
    EXPECT_DOUBLE_EQ(parsed.at("nested").at("deep").as_number(), 1e-9);
  }
}

TEST(TelemetryJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), CheckError);
  EXPECT_THROW(JsonValue::parse("{"), CheckError);
  EXPECT_THROW(JsonValue::parse("[1,]"), CheckError);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1,}"), CheckError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), CheckError);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"), CheckError);
  EXPECT_THROW(JsonValue::parse("nul"), CheckError);
}

TEST(TelemetryJson, ParserDecodesEscapes) {
  const JsonValue v = JsonValue::parse(R"("a\tbA\\")");
  EXPECT_EQ(v.as_string(), "a\tbA\\");
}

TEST(TelemetryExport, RegistrySnapshotHasExpectedShape) {
  const ScopedEnable enable;
  SOR_COUNTER("test/export_counter").add(7);
  SOR_GAUGE("test/export_gauge").set(1.5);
  SOR_HISTOGRAM("test/export_hist", 0.0, 10.0, 5).observe(3.0);

  const JsonValue doc = telemetry::registry_to_json();
  ASSERT_TRUE(doc.is_object());
  EXPECT_GE(doc.at("counters").at("test/export_counter").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("test/export_gauge").as_number(), 1.5);
  const JsonValue& hist = doc.at("histograms").at("test/export_hist");
  EXPECT_GE(hist.at("count").as_number(), 1.0);
  EXPECT_EQ(hist.at("buckets").size(), 5u);
  // The exporter's output must itself round-trip.
  const JsonValue reparsed = JsonValue::parse(doc.dump(2));
  EXPECT_TRUE(reparsed.at("histograms").has("test/export_hist"));
}

TEST(TelemetryKillSwitch, DisabledRecordsNothing) {
  const ScopedEnable enable;
  auto& counter = SOR_COUNTER("test/killswitch_counter");
  auto& gauge = SOR_GAUGE("test/killswitch_gauge");
  auto& hist = SOR_HISTOGRAM("test/killswitch_hist", 0.0, 1.0, 4);
  counter.reset();
  gauge.set(3.0);
  hist.reset();
  telemetry::reset_spans();

  telemetry::set_enabled(false);
  counter.add(5);
  gauge.set(99.0);
  hist.observe(0.5);
  { SOR_SPAN("test/killswitch_span"); }
  telemetry::set_enabled(true);

  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  EXPECT_EQ(hist.snapshot().count, 0u);
  EXPECT_EQ(find_span(telemetry::snapshot_spans(), "test/killswitch_span"),
            nullptr);
}

TEST(TelemetryKillSwitch, SolverResultsUnchangedWhenDisabled) {
  const ScopedEnable enable;
  const Graph g = make_grid(4, 4);
  const ShortestPathRouting routing(g);
  PathSystem ps;
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    for (Vertex t = s + 1; t < g.num_vertices(); ++t) {
      Rng rng(7);
      ps.add(routing.sample_path(s, t, rng));
    }
  }
  Demand d;
  d.add(0, 15, 4.0);
  d.add(3, 12, 4.0);
  const SemiObliviousRouter router(g, ps);

  const double with_telemetry = router.route_fractional(d).congestion;
  telemetry::set_enabled(false);
  const double without_telemetry = router.route_fractional(d).congestion;
  telemetry::set_enabled(true);
  EXPECT_DOUBLE_EQ(with_telemetry, without_telemetry);
}

TEST(HistogramQuantiles, EmptyHistogramSummarizesToZero) {
  const std::vector<std::uint64_t> empty_counts(8, 0);
  const StatsSummary s = summarize_histogram(empty_counts, 0.0, 1.0);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(HistogramQuantiles, SingleBucketPutsEveryQuantileAtItsMidpoint) {
  const std::vector<std::uint64_t> counts = {17};
  const StatsSummary s = summarize_histogram(counts, 0.0, 10.0);
  EXPECT_EQ(s.count, 17u);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.p95, 5.0);
  EXPECT_DOUBLE_EQ(s.p99, 5.0);
}

TEST(HistogramQuantiles, AllValuesEqualCollapseTheQuantiles) {
  const ScopedEnable enable;
  auto& hist = SOR_HISTOGRAM("test/all_equal_hist", 0.0, 10.0, 10);
  hist.reset();
  for (int i = 0; i < 100; ++i) hist.observe(3.0);
  const StatsSummary s = hist.summary();
  EXPECT_EQ(s.count, 100u);
  // Every value landed in the [3, 4) bucket, so every quantile is that
  // bucket's midpoint, the mean is exact, and max is the exact extremum.
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p95, 3.5);
  EXPECT_DOUBLE_EQ(s.p99, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(TelemetryRegistry, ConcurrentInterningAndUpdates) {
  const ScopedEnable enable;
  // Threads race both the name→metric interning map and the metric
  // updates themselves (this is the case SOR_SANITIZE=thread watches).
  const std::size_t n = 8000;
  parallel_for(n, [&](std::size_t i) {
    auto& registry = telemetry::Registry::global();
    registry.counter("test/registry_race_" + std::to_string(i % 4)).add();
    registry.gauge("test/registry_race_gauge").set(static_cast<double>(i));
  });
  std::uint64_t total = 0;
  for (const auto& [name, value] : telemetry::Registry::global().counters()) {
    if (name.rfind("test/registry_race_", 0) == 0) total += value;
  }
  EXPECT_GE(total, n);  // >= because other suite runs may share names
}

TEST(Recorder, RecordsEventsInOrderWithFields) {
  const ScopedEnable enable;
  telemetry::Recorder recorder(16);
  recorder.record("cat/a", {{"x", 1.5}, {"label", "first"}});
  recorder.record("cat/b", {{"n", std::uint64_t{7}}});
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].category, "cat/a");
  EXPECT_EQ(events[1].category, "cat/b");
  EXPECT_GE(events[0].seconds, 0.0);
  EXPECT_LE(events[0].seconds, events[1].seconds);
  ASSERT_EQ(events[0].fields.size(), 2u);
  EXPECT_EQ(events[0].fields[0].first, "x");
  EXPECT_DOUBLE_EQ(events[0].fields[0].second.as_number(), 1.5);
  EXPECT_EQ(events[0].fields[1].second.as_string(), "first");
  EXPECT_EQ(recorder.recorded(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(Recorder, RingEvictsOldestAndCountsDrops) {
  const ScopedEnable enable;
  telemetry::Recorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record("evict", {{"i", static_cast<double>(i)}});
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_DOUBLE_EQ(events[k].fields[0].second.as_number(),
                     static_cast<double>(6 + k));  // newest 4, oldest first
  }
}

TEST(Recorder, SetCapacityKeepsNewestInOrder) {
  const ScopedEnable enable;
  telemetry::Recorder recorder(8);
  for (int i = 0; i < 12; ++i) {
    recorder.record("resize", {{"i", static_cast<double>(i)}});
  }
  recorder.set_capacity(3);  // shrink a wrapped ring
  auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].fields[0].second.as_number(), 9.0);
  recorder.set_capacity(6);  // grow again; order must survive
  recorder.record("resize", {{"i", 12.0}});
  events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t k = 0; k + 1 < events.size(); ++k) {
    EXPECT_LT(events[k].fields[0].second.as_number(),
              events[k + 1].fields[0].second.as_number());
  }
}

TEST(Recorder, KillSwitchSuppressesRecording) {
  const ScopedEnable enable;
  telemetry::Recorder recorder(8);
  telemetry::set_enabled(false);
  recorder.record("off", {{"x", 1.0}});
  telemetry::set_enabled(true);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(Recorder, ConcurrentRecordsAreAllCounted) {
  const ScopedEnable enable;
  telemetry::Recorder recorder(256);
  const std::size_t n = 4000;
  parallel_for(n, [&](std::size_t i) {
    recorder.record("race", {{"i", static_cast<double>(i)}});
  });
  EXPECT_EQ(recorder.recorded(), n);
  EXPECT_EQ(recorder.dropped(), n - 256);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 256u);
  for (std::size_t k = 1; k < events.size(); ++k) {
    EXPECT_LE(events[k - 1].seconds, events[k].seconds);
  }
}

TEST(Timeline, DisabledByDefaultRecordsNothing) {
  const ScopedEnable enable;
  telemetry::reset_timeline();
  { SOR_SPAN("test/timeline_off"); }
  EXPECT_TRUE(telemetry::snapshot_timeline().empty());
}

TEST(Timeline, CapturesNestedSpanIntervals) {
  const ScopedEnable enable;
  telemetry::reset_timeline();
  telemetry::set_timeline_enabled(true);
  {
    SOR_SPAN("test/tl_outer");
    { SOR_SPAN("test/tl_inner"); }
  }
  telemetry::set_timeline_enabled(false);
  const auto events = telemetry::snapshot_timeline();
  telemetry::reset_timeline();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: inner closes first.
  EXPECT_EQ(events[0].name, "test/tl_inner");
  EXPECT_EQ(events[1].name, "test/tl_outer");
  for (const auto& e : events) {
    EXPECT_GE(e.start_seconds, 0.0);
    EXPECT_GE(e.duration_seconds, 0.0);
  }
  // The inner interval nests inside the outer one (small slack for the
  // clock reads around the span boundaries).
  EXPECT_LE(events[1].start_seconds, events[0].start_seconds + 1e-9);
  EXPECT_GE(events[1].start_seconds + events[1].duration_seconds,
            events[0].start_seconds + events[0].duration_seconds - 1e-9);
}

TEST(Timeline, CapacityDropsNewestAndCounts) {
  const ScopedEnable enable;
  telemetry::reset_timeline();
  telemetry::set_timeline_capacity(2);
  telemetry::set_timeline_enabled(true);
  { SOR_SPAN("test/tl_1"); }
  { SOR_SPAN("test/tl_2"); }
  { SOR_SPAN("test/tl_3"); }
  { SOR_SPAN("test/tl_4"); }
  telemetry::set_timeline_enabled(false);
  const auto events = telemetry::snapshot_timeline();
  const std::uint64_t dropped = telemetry::timeline_dropped();
  telemetry::reset_timeline();
  telemetry::set_timeline_capacity(65536);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "test/tl_1");  // drop-newest keeps the head
  EXPECT_EQ(events[1].name, "test/tl_2");
  EXPECT_EQ(dropped, 2u);
}

TEST(TelemetryExport, ChromeTraceMergesAndSortsEvents) {
  std::vector<telemetry::TimelineEvent> timeline;
  timeline.push_back({"span_late", 0, 0.002, 0.001});
  timeline.push_back({"span_early", 1, 0.0005, 0.0001});
  std::vector<telemetry::RecorderEvent> events;
  events.push_back({0.001, "marker", {{"k", JsonValue(3.0)}}});
  const JsonValue doc = telemetry::chrome_trace_json(timeline, events);
  ASSERT_TRUE(doc.has("traceEvents"));
  const JsonValue& trace = doc.at("traceEvents");
  ASSERT_EQ(trace.size(), 3u);
  // Sorted by microsecond timestamp: early span, marker, late span.
  EXPECT_EQ(trace.at(0).at("name").as_string(), "span_early");
  EXPECT_EQ(trace.at(1).at("name").as_string(), "marker");
  EXPECT_EQ(trace.at(2).at("name").as_string(), "span_late");
  EXPECT_EQ(trace.at(0).at("ph").as_string(), "X");
  EXPECT_EQ(trace.at(1).at("ph").as_string(), "i");
  EXPECT_DOUBLE_EQ(trace.at(0).at("dur").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(trace.at(1).at("args").at("k").as_number(), 3.0);
}

}  // namespace
}  // namespace sor
