// Unit and property tests for src/tree: FRT HST embeddings (laminarity,
// leaf coverage, routing validity, expected-stretch behaviour) and the
// Räcke MWU tree ensemble (mixture load certificate, sane competitiveness
// on structured graphs).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.hpp"
#include "graph/search.hpp"
#include "tree/frt.hpp"
#include "tree/racke.hpp"
#include "util/rng.hpp"

namespace sor {
namespace {

std::vector<double> unit_lengths(const Graph& g) {
  return std::vector<double>(g.num_edges(), 1.0);
}

TEST(Frt, LeavesCoverAllVertices) {
  const Graph g = make_grid(4, 4);
  Rng rng(1);
  const HstTree tree = build_frt_tree(g, unit_lengths(g), rng);
  std::set<HstNodeId> leaf_ids;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const HstNodeId leaf = tree.leaf_of(v);
    EXPECT_EQ(tree.node(leaf).members.size(), 1u);
    EXPECT_EQ(tree.node(leaf).members[0], v);
    EXPECT_EQ(tree.node(leaf).center, v);
    leaf_ids.insert(leaf);
  }
  EXPECT_EQ(leaf_ids.size(), g.num_vertices());
}

TEST(Frt, LaminarStructure) {
  const Graph g = make_torus(3, 5);
  Rng rng(2);
  const HstTree tree = build_frt_tree(g, unit_lengths(g), rng);
  // Children partition the parent's members.
  for (HstNodeId id = 0; id < tree.nodes().size(); ++id) {
    const HstNode& node = tree.node(id);
    if (node.children.empty()) continue;
    std::multiset<Vertex> from_children;
    for (HstNodeId c : node.children) {
      EXPECT_EQ(tree.node(c).parent, id);
      EXPECT_LT(tree.node(c).level, node.level);
      for (Vertex v : tree.node(c).members) from_children.insert(v);
    }
    std::multiset<Vertex> own(node.members.begin(), node.members.end());
    EXPECT_EQ(from_children, own);
  }
}

TEST(Frt, RootContainsEverything) {
  const Graph g = make_hypercube(4);
  Rng rng(3);
  const HstTree tree = build_frt_tree(g, unit_lengths(g), rng);
  EXPECT_EQ(tree.node(tree.root()).members.size(), g.num_vertices());
}

TEST(Frt, CutCapacitiesAreCorrect) {
  const Graph g = make_complete(5);  // cut of a size-s set: s·(5-s)
  Rng rng(4);
  const HstTree tree = build_frt_tree(g, unit_lengths(g), rng);
  for (const HstNode& node : tree.nodes()) {
    const auto s = static_cast<double>(node.members.size());
    EXPECT_DOUBLE_EQ(node.cut_capacity, s * (5 - s));
  }
}

TEST(Frt, RoutesAreValidSimplePaths) {
  const Graph g = make_erdos_renyi(30, 0.2, 11);
  Rng rng(5);
  const HstTree tree = build_frt_tree(g, unit_lengths(g), rng);
  Rng pick(6);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = static_cast<Vertex>(pick.next_u64(g.num_vertices()));
    const auto t = static_cast<Vertex>(pick.next_u64(g.num_vertices()));
    const Path p = tree.route(g, s, t);
    EXPECT_EQ(p.src, s);
    EXPECT_EQ(p.dst, t);
    EXPECT_TRUE(is_simple_path(g, p));
    if (s == t) {
      EXPECT_EQ(p.hops(), 0u);
    }
  }
}

TEST(Frt, RouteIsDeterministic) {
  const Graph g = make_grid(5, 5);
  Rng rng(7);
  const HstTree tree = build_frt_tree(g, unit_lengths(g), rng);
  EXPECT_EQ(tree.route(g, 0, 24), tree.route(g, 0, 24));
}

TEST(Frt, ExpectedStretchIsLogarithmicOnGrid) {
  // Property test: averaged over trees and pairs, FRT distance stretch
  // should be O(log n) — we assert a generous constant.
  const Graph g = make_grid(6, 6);
  const auto lengths = unit_lengths(g);
  Rng rng(8);
  double total_stretch = 0;
  int count = 0;
  for (int trees = 0; trees < 8; ++trees) {
    Rng tree_rng = rng.split(trees);
    const HstTree tree = build_frt_tree(g, lengths, tree_rng);
    for (Vertex s = 0; s < g.num_vertices(); s += 7) {
      const SpTree sp = bfs(g, s);
      for (Vertex t = 0; t < g.num_vertices(); t += 5) {
        if (s == t) continue;
        const Path p = tree.route(g, s, t);
        total_stretch +=
            static_cast<double>(p.hops()) / static_cast<double>(sp.hops[t]);
        ++count;
      }
    }
  }
  const double avg_stretch = total_stretch / count;
  // log2(36) ≈ 5.2; allow a healthy constant.
  EXPECT_LT(avg_stretch, 16.0);
  EXPECT_GE(avg_stretch, 1.0);
}

TEST(Frt, TreeHopsPositiveForDistinctVertices) {
  const Graph g = make_hypercube(3);
  Rng rng(9);
  const HstTree tree = build_frt_tree(g, unit_lengths(g), rng);
  EXPECT_GT(tree.tree_hops(0, 7), 0u);
  EXPECT_EQ(tree.tree_hops(3, 3), 0u);
}

TEST(Frt, WorksWithNonUniformLengths) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  const std::vector<double> lengths{1.0, 10.0, 1.0, 0.5};
  Rng rng(10);
  const HstTree tree = build_frt_tree(g, lengths, rng);
  const Path p = tree.route(g, 0, 3);
  EXPECT_TRUE(is_simple_path(g, p));
}

TEST(Frt, RejectsNonPositiveLengths) {
  const Graph g = make_grid(2, 2);
  std::vector<double> lengths(g.num_edges(), 1.0);
  lengths[0] = 0.0;
  Rng rng(11);
  EXPECT_THROW(build_frt_tree(g, lengths, rng), CheckError);
}

TEST(Racke, BuildsRequestedTreeCount) {
  const Graph g = make_grid(4, 4);
  RaeckeOptions options;
  options.num_trees = 5;
  options.seed = 1;
  const RaeckeEnsemble ensemble(g, options);
  EXPECT_EQ(ensemble.num_trees(), 5u);
  double total_weight = 0;
  for (std::size_t i = 0; i < ensemble.num_trees(); ++i) {
    total_weight += ensemble.tree_weight(i);
  }
  EXPECT_NEAR(total_weight, 1.0, 1e-9);
}

TEST(Racke, AutoTreeCountScalesWithLogN) {
  const Graph g = make_hypercube(4);  // n = 16
  const RaeckeEnsemble ensemble(g, {});
  EXPECT_EQ(ensemble.num_trees(), 2u * 4 + 4);
}

TEST(Racke, SampledPathsAreValid) {
  const Graph g = make_torus(4, 4);
  RaeckeOptions options;
  options.seed = 3;
  const RaeckeEnsemble ensemble(g, options);
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto s = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
    const auto t = static_cast<Vertex>(rng.next_u64(g.num_vertices()));
    if (s == t) continue;
    const Path p = ensemble.sample_path(s, t, rng);
    EXPECT_TRUE(is_simple_path(g, p));
    EXPECT_EQ(p.src, s);
    EXPECT_EQ(p.dst, t);
  }
}

TEST(Racke, MixtureLoadCertificateIsModest) {
  // The mixture max relative load bounds the competitive ratio against
  // any feasible demand; on small structured graphs it should be far
  // below the trivial O(m) bound and in the polylog range.
  for (const auto* name : {"grid", "hypercube", "expander"}) {
    Graph g = std::string(name) == "grid"      ? make_grid(5, 5)
              : std::string(name) == "hypercube" ? make_hypercube(5)
                                                 : make_random_regular(32, 4, 5);
    RaeckeOptions options;
    options.seed = 17;
    const RaeckeEnsemble ensemble(g, options);
    const double certificate = ensemble.mixture_max_relative_load();
    EXPECT_GE(certificate, 1.0) << name;
    EXPECT_LT(certificate,
              6.0 * std::log2(static_cast<double>(g.num_vertices())) + 20)
        << name;
  }
}

TEST(Racke, LoadFeedbackDiversifiesTrees) {
  // With MWU feedback, later trees should not all reuse the same bridge:
  // on a dumbbell the bridge edges' mixture load stays bounded by ~1 plus
  // slack rather than #trees.
  const Graph g = make_dumbbell(6, 3);
  RaeckeOptions options;
  options.seed = 23;
  options.num_trees = 12;
  const RaeckeEnsemble ensemble(g, options);
  // Bridges are the only way across; relative load there is forced to ~
  // cut/3 per tree — but the mixture should not exceed that by much.
  const double certificate = ensemble.mixture_max_relative_load();
  EXPECT_LT(certificate, 40.0);
}

TEST(Racke, OptimizedWeightsNeverWorseThanUniform) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const Graph g = make_erdos_renyi(40, 0.15, seed);
    RaeckeOptions uniform;
    uniform.seed = seed;
    uniform.num_trees = 10;
    RaeckeOptions optimized = uniform;
    optimized.optimize_weights = true;
    const RaeckeEnsemble base(g, uniform);
    const RaeckeEnsemble tuned(g, optimized);
    EXPECT_LE(tuned.mixture_max_relative_load(),
              base.mixture_max_relative_load() * 1.02 + 1e-9)
        << "seed " << seed;
  }
}

TEST(Racke, OptimizedWeightsFormDistribution) {
  const Graph g = make_grid(4, 4);
  RaeckeOptions options;
  options.seed = 9;
  options.num_trees = 6;
  options.optimize_weights = true;
  const RaeckeEnsemble ensemble(g, options);
  double total = 0;
  for (std::size_t i = 0; i < ensemble.num_trees(); ++i) {
    EXPECT_GE(ensemble.tree_weight(i), 0.0);
    total += ensemble.tree_weight(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MixtureGame, SolvesHandComputableGame) {
  // Two "trees", two "edges": loads T0 = (1, 0), T1 = (0, 1). The optimal
  // mixture is (1/2, 1/2) with value 1/2.
  const std::vector<std::vector<double>> loads{{1.0, 0.0}, {0.0, 1.0}};
  const auto w = optimize_mixture_weights(loads, 2000);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0], 0.5, 0.1);
  const double value = std::max(w[0] * 1.0, w[1] * 1.0);
  EXPECT_LT(value, 0.62);
}

TEST(MixtureGame, DominatedTreeGetsNoWeight) {
  // T1 dominates T0 on every edge → all weight on T1.
  const std::vector<std::vector<double>> loads{{2.0, 2.0}, {1.0, 1.0}};
  const auto w = optimize_mixture_weights(loads, 500);
  EXPECT_GT(w[1], 0.99);
}

TEST(TreeRelativeLoad, AccountsCutCapacity) {
  // Path graph 0-1-2: any tree must charge the middle edges with the cut
  // capacities of the clusters they separate.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Rng rng(29);
  const HstTree tree = build_frt_tree(g, unit_lengths(g), rng);
  const auto rload = tree_relative_load(g, tree);
  for (double r : rload) EXPECT_GE(r, 1.0);  // every edge carries >= its own cut share
}

}  // namespace
}  // namespace sor
