// Unit tests for src/util: RNG determinism and distributions, thread pool,
// parallel_for, statistics, table formatting, check macros.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "telemetry/artifact.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace sor {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(SOR_CHECK(false), CheckError);
  try {
    SOR_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(SOR_CHECK(true));
  EXPECT_NO_THROW(SOR_CHECK_MSG(2 + 2 == 4, "fine"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitStreamsAreIndependentOfParentUse) {
  Rng parent(7);
  const Rng child_before = parent.split(5);
  (void)parent.operator()();  // advancing the parent...
  Rng parent2(7);
  Rng child_after = parent2.split(5);  // ...does not change split results
  Rng child_copy = child_before;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child_copy(), child_after());
}

TEST(Rng, SplitDifferentIdsDiffer) {
  Rng parent(7);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextU64InRangeAndRoughlyUniform) {
  Rng rng(99);
  std::vector<std::size_t> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t v = rng.next_u64(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 10.0, trials * 0.01);
  }
}

TEST(Rng, NextU64BoundOne) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_u64(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NextI64CoversRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_i64(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, WeightedSamplingMatchesWeights) {
  Rng rng(17);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.next_weighted(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 0.6, 0.01);
}

TEST(Rng, WeightedSamplingRejectsAllZero) {
  Rng rng(1);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.next_weighted(weights), CheckError);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(23);
  const auto p = rng.permutation(100);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.next_bool(0.25);
  EXPECT_NEAR(heads / 100000.0, 0.25, 0.01);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { ++hits[i]; }, &pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesZeroAndOne) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("bad index");
          },
          &pool),
      std::runtime_error);
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  const long long total = parallel_reduce<long long>(
      1000, 0LL, [](std::size_t i) { return static_cast<long long>(i); },
      [](long long a, long long b) { return a + b; }, &pool);
  EXPECT_EQ(total, 999LL * 1000 / 2);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), CheckError);
  EXPECT_THROW(s.min(), CheckError);
}

TEST(Stats, Quantile) {
  const std::vector<double> data{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.25), 2.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> data{1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(data), 4.0, 1e-12);
  const std::vector<double> with_zero{1.0, 0.0};
  EXPECT_THROW(geometric_mean(with_zero), CheckError);
}

TEST(Stats, Histogram) {
  const std::vector<double> data{0.1, 0.2, 0.5, 0.9, -1.0, 2.0};
  const auto h = histogram(data, 0.0, 1.0, 2);
  // -1.0 clamps into bin 0; 0.9 and 2.0 into bin 1; 0.5 lands in bin 1.
  EXPECT_EQ(h[0] + h[1], 6u);
  EXPECT_EQ(h[0], 3u);
  EXPECT_EQ(h[1], 3u);
}

TEST(Table, FormatsRowsAndCsv) {
  Table t({"name", "value"});
  t.add_row({"a", Table::fmt(1.5, 1)});
  t.add_row({"bb", Table::fmt_int(42)});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("name,value"), std::string::npos);
  EXPECT_NE(csv.str().find("bb,42"), std::string::npos);
}

TEST(Table, FmtRendersNonFiniteAsDash) {
  // Empty sketches and zero-epoch runs surface NaN/inf into column
  // formatting; the tables must show "-" rather than "nan"/"inf".
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Table::fmt(nan, 3), "-");
  EXPECT_EQ(Table::fmt(inf, 3), "-");
  EXPECT_EQ(Table::fmt(-inf, 3), "-");
  EXPECT_EQ(Table::fmt(0.0, 2), "0.00");
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(Stopwatch, MeasuresElapsedTimeMonotonically) {
  Stopwatch sw;
  const double a = sw.seconds();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  const double b = sw.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_NEAR(sw.milliseconds(), sw.seconds() * 1000, sw.seconds() * 10);
  sw.reset();
  EXPECT_LT(sw.seconds(), b + 1.0);
}

TEST(Log, LevelThresholdGates) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold logging must be a no-op (no crash, no output check
  // needed — the call path is what's exercised).
  SOR_LOG(kDebug) << "dropped";
  SOR_LOG(kInfo) << "dropped " << 42;
  set_log_level(previous);
}

TEST(StatsSummary, EmptySampleIsAllZeros) {
  const StatsSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(StatsSummary, SingleSampleIsItsOwnQuantiles) {
  const std::vector<double> one{3.5};
  const StatsSummary s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p95, 3.5);
  EXPECT_DOUBLE_EQ(s.p99, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(StatsSummary, QuantilesByNearestRank) {
  std::vector<double> data;
  for (int i = 1; i <= 100; ++i) data.push_back(static_cast<double>(i));
  const StatsSummary s = summarize(data);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(StatsSummary, HistogramEmptyIsAllZeros) {
  const std::vector<std::uint64_t> counts(8, 0);
  const StatsSummary s = summarize_histogram(counts, 0.0, 8.0);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(StatsSummary, HistogramReconstructsBinMidpoints) {
  // 4 bins over [0, 8): midpoints 1, 3, 5, 7.
  const std::vector<std::uint64_t> counts{2, 0, 0, 2};
  const StatsSummary s = summarize_histogram(counts, 0.0, 8.0);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.p50, 7.0);  // 0-based rank 2 of 4 lands in the last bin
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
}

TEST(StatsSummary, HistogramClampedBoundaryBin) {
  // Everything in the last bin (as clamping produces): all quantiles and
  // the max collapse onto its midpoint.
  const std::vector<std::uint64_t> counts{0, 0, 0, 5};
  const StatsSummary s = summarize_histogram(counts, 0.0, 4.0);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p99, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

// Satellite: the human-readable formatters meet negative and non-finite
// values when rendering corrupt or sentinel metrics; they must degrade to
// spelled-out text instead of scaling garbage.
TEST(Format, SecondsHandlesNegativeAndNonFinite) {
  using telemetry::format_seconds;
  EXPECT_EQ(format_seconds(2.41), "2.41 s");
  EXPECT_EQ(format_seconds(-2.41), "-2.41 s");
  EXPECT_EQ(format_seconds(-0.0025), "-2.5 ms");
  EXPECT_EQ(format_seconds(0.0), "0 s");
  EXPECT_EQ(format_seconds(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_seconds(std::numeric_limits<double>::infinity()), "inf s");
  EXPECT_EQ(format_seconds(-std::numeric_limits<double>::infinity()),
            "-inf s");
}

TEST(Format, QuantityHandlesNegativeAndNonFinite) {
  using telemetry::format_quantity;
  EXPECT_EQ(format_quantity(1500.0), "1.5k");
  EXPECT_EQ(format_quantity(-1500.0), "-1.5k");
  EXPECT_EQ(format_quantity(-3.0), "-3");
  EXPECT_EQ(format_quantity(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_quantity(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_quantity(-std::numeric_limits<double>::infinity()),
            "-inf");
}

}  // namespace
}  // namespace sor
