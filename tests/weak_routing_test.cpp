// Tests for the Section 5.3 proof machinery: the weak-routing deletion
// process and the Lemma 5.8 weak→strong halving reduction — including the
// paper's headline statistical property (a (log n)-sample survives the
// process routing at least half of a permutation demand).

#include <gtest/gtest.h>

#include <cmath>

#include "core/sampler.hpp"
#include "core/weak_routing.hpp"
#include "demand/generators.hpp"
#include "graph/generators.hpp"
#include "oblivious/valiant.hpp"
#include "util/rng.hpp"

namespace sor {
namespace {

RestrictedProblem problem_from(const Graph& g, const PathSystem& ps,
                               const Demand& d) {
  RestrictedProblem problem;
  problem.graph = &g;
  for (const Commodity& c : d.commodities()) {
    RestrictedCommodity rc;
    rc.demand = c.amount;
    rc.candidates = ps.paths_oriented(c.src, c.dst);
    problem.commodities.push_back(std::move(rc));
  }
  return problem;
}

TEST(WeakRouting, NoDeletionsWhenThresholdHigh) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  PathSystem ps;
  ps.add(Path{0, 2, {e01, e12}});
  Demand d;
  d.add(0, 2, 1.0);
  const WeakRoutingResult r =
      weak_routing_process(problem_from(g, ps, d), 10.0);
  EXPECT_TRUE(r.deleted_edges.empty());
  EXPECT_DOUBLE_EQ(r.routed_amount, 1.0);
  EXPECT_DOUBLE_EQ(r.total_demand, 1.0);
  EXPECT_DOUBLE_EQ(r.congestion, 1.0);
}

TEST(WeakRouting, DeletesOvercongestedEdgeInOrder) {
  // Two commodities forced over the same first edge with threshold below
  // their combined share → edge 0 deleted, everything through it zeroed.
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  PathSystem ps;
  ps.add(Path{0, 1, {e01}});
  ps.add(Path{0, 2, {e01, e12}});
  Demand d;
  d.add(0, 1, 1.0);
  d.add(0, 2, 1.0);
  const WeakRoutingResult r =
      weak_routing_process(problem_from(g, ps, d), 1.5);
  ASSERT_EQ(r.deleted_edges.size(), 1u);
  EXPECT_EQ(r.deleted_edges[0], e01);
  EXPECT_DOUBLE_EQ(r.routed_amount, 0.0);  // both paths crossed e01
  EXPECT_DOUBLE_EQ(r.congestion, 0.0);
}

TEST(WeakRouting, CongestionNeverExceedsThreshold) {
  const Graph g = make_hypercube(5);
  const ValiantHypercube routing(g, 5);
  Rng rng(1);
  const Demand d = random_permutation_demand(g, rng);
  SampleOptions sample;
  sample.k = 4;
  const PathSystem ps = sample_path_system_for_demand(routing, d, sample, 2);
  for (double threshold : {0.3, 0.7, 1.5, 3.0}) {
    const WeakRoutingResult r =
        weak_routing_process(problem_from(g, ps, d), threshold);
    EXPECT_LE(r.congestion, threshold + 1e-9);
    EXPECT_LE(r.routed_amount, r.total_demand + 1e-9);
  }
}

TEST(WeakRouting, SweepUsesFixedEdgeOrder) {
  // Earlier edges are processed first: construct loads so that deleting
  // the early edge relieves the later one.
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1);  // early
  const EdgeId e1 = g.add_edge(1, 2);  // later
  const EdgeId e2 = g.add_edge(0, 3);
  const EdgeId e3 = g.add_edge(3, 2);
  PathSystem ps;
  ps.add(Path{0, 2, {e0, e1}});
  ps.add(Path{0, 2, {e2, e3}});
  Demand d;
  d.add(0, 2, 3.0);  // 1.5 per candidate
  // Threshold 1.4: edge e0 congested (1.5 > 1.4) → first path deleted;
  // the second path (1.5 on e2/e3) is also over threshold and gets cut
  // when its first edge is processed... e2 load 1.5 > 1.4 → deleted too.
  const WeakRoutingResult r1 =
      weak_routing_process(problem_from(g, ps, d), 1.4);
  EXPECT_EQ(r1.deleted_edges.size(), 2u);
  EXPECT_EQ(r1.deleted_edges[0], e0);
  EXPECT_EQ(r1.deleted_edges[1], e2);
  // Threshold 1.6: nothing deleted.
  const WeakRoutingResult r2 =
      weak_routing_process(problem_from(g, ps, d), 1.6);
  EXPECT_TRUE(r2.deleted_edges.empty());
  EXPECT_DOUBLE_EQ(r2.routed_amount, 3.0);
}

TEST(WeakRouting, MainLemmaStatistics) {
  // The paper's core claim, tested statistically: on the hypercube with
  // k = O(log n) Valiant samples and threshold O(1)·k-ish, the process
  // routes at least half of a random permutation demand, for every one of
  // several random demands.
  const std::uint32_t dim = 6;
  const Graph g = make_hypercube(dim);
  const ValiantHypercube routing(g, dim);
  const std::size_t k = 2 * dim;  // 2·log2(n)
  const double threshold = 3.0;   // O(1), the oblivious congestion scale

  SampleOptions sample;
  sample.k = k;
  const PathSystem ps = sample_path_system_all_pairs(routing, sample, 3);

  int failures = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(100 + trial);
    const Demand d = random_permutation_demand(g, rng);
    const WeakRoutingResult r =
        weak_routing_process(problem_from(g, ps, d), threshold);
    if (r.routed_amount < r.total_demand / 2) ++failures;
  }
  EXPECT_EQ(failures, 0);
}

TEST(WeakRouting, SparseSamplesFailMoreOften) {
  // Contrast: with k = 1 the same process at the same threshold loses
  // far more demand (the deterministic-single-path regime).
  const std::uint32_t dim = 6;
  const Graph g = make_hypercube(dim);
  const ValiantHypercube routing(g, dim);
  const double threshold = 3.0;

  auto routed_fraction = [&](std::size_t k) {
    SampleOptions sample;
    sample.k = k;
    const PathSystem ps = sample_path_system_all_pairs(routing, sample, 4);
    double total = 0;
    for (int trial = 0; trial < 5; ++trial) {
      Rng rng(200 + trial);
      const Demand d = random_permutation_demand(g, rng);
      const WeakRoutingResult r =
          weak_routing_process(problem_from(g, ps, d), threshold);
      total += r.routed_amount / r.total_demand;
    }
    return total / 5;
  };

  EXPECT_GT(routed_fraction(12), routed_fraction(1));
}

TEST(Halving, RoutesFullDemandWithBoundedCongestion) {
  const std::uint32_t dim = 5;
  const Graph g = make_hypercube(dim);
  const ValiantHypercube routing(g, dim);
  SampleOptions sample;
  sample.k = 2 * dim;
  const PathSystem ps = sample_path_system_all_pairs(routing, sample, 5);
  Rng rng(6);
  const Demand d = random_permutation_demand(g, rng);

  const double threshold = 3.0;
  const HalvingRouteResult r = route_by_halving(g, ps, d, threshold);
  EXPECT_DOUBLE_EQ(r.force_routed, 0.0);
  // Each round adds <= 4·threshold; rounds = O(log |D|).
  EXPECT_LE(r.congestion,
            4 * threshold * (std::log2(d.total()) + 2));
  EXPECT_GE(r.rounds, 1u);
}

TEST(Halving, SingleRoundWhenEverythingSurvives) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  PathSystem ps;
  ps.add(Path{0, 2, {e01, e12}});
  Demand d;
  d.add(0, 2, 1.0);
  const HalvingRouteResult r = route_by_halving(g, ps, d, 5.0);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_DOUBLE_EQ(r.congestion, 1.0);
  EXPECT_DOUBLE_EQ(r.force_routed, 0.0);
}

TEST(Halving, ForceRoutesWhenSystemIsHopeless) {
  // Single shared edge, tiny threshold: nothing ever survives, the
  // router must fall back to force-routing.
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  PathSystem ps;
  ps.add(Path{0, 1, {e}});
  Demand d;
  d.add(0, 1, 10.0);
  const HalvingRouteResult r = route_by_halving(g, ps, d, 0.5, 3);
  EXPECT_DOUBLE_EQ(r.force_routed, 10.0);
  EXPECT_DOUBLE_EQ(r.congestion, 10.0);
}

}  // namespace
}  // namespace sor
